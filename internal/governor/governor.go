// Package governor is the closed-loop resilience controller over a FlexTM
// run: it consumes the per-interval Frames the observatory pump publishes,
// classifies each interval into a health state, and walks a configurable
// mitigation ladder — contention-manager swaps, back-off scaling, admission
// control, signature widening, and finally forced serialization — raising a
// rung when the run stays unhealthy and lowering one when it stays healthy,
// with hysteresis and cooldowns so the controller cannot flap.
//
// The governor runs as a dedicated simulated thread (harness wires it in
// right after the observatory pump, so at every shared tick the pump
// publishes frame k before the governor reads it). Every knob it turns is a
// Go-side runtime field consulted behind a single branch, and the
// controller itself consumes no randomness, so:
//
//   - a run with the governor disabled is bit-identical to one where the
//     package does not exist, and
//   - a governed run is a pure function of (seed, config): the same inputs
//     replay the same transitions, fault injection included.
//
// Classification is per-interval, not per-window: the pump's sliding
// conflict-graph report keeps a resolved pathology visible for many
// intervals after it cleared (the window slides only while records arrive),
// so the governor re-analyzes just the records whose timestamps fall inside
// the frame's own interval. A calm interval therefore reads as healthy the
// moment the pathology stops, which is what makes de-escalation converge.
package governor

import (
	"fmt"
	"strconv"
	"strings"

	"flextm/internal/cm"
	"flextm/internal/conflictgraph"
	"flextm/internal/core"
	"flextm/internal/flight"
	"flextm/internal/observatory"
	"flextm/internal/signature"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
)

// State classifies one observed interval.
type State int

// Health states, ordered by diagnostic priority: when several apply, the
// most specific (earliest) wins.
const (
	Healthy State = iota
	AbortCycling
	Starving
	SigSaturated
	OverflowThrashing
	Contended
	NumStates
)

var stateNames = [NumStates]string{
	Healthy:           "healthy",
	AbortCycling:      "abort-cycling",
	Starving:          "starving",
	SigSaturated:      "sig-saturated",
	OverflowThrashing: "overflow-thrashing",
	Contended:         "contended",
}

// String returns the state's stable kebab-case name.
func (s State) String() string {
	if s >= 0 && s < NumStates {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// ActionKind identifies one mitigation rung type.
type ActionKind int

// The ladder's rung types, in the order the default ladder applies them.
const (
	// ActCM swaps the contention-manager policy live.
	ActCM ActionKind = iota
	// ActBackoff left-shifts every retry back-off window.
	ActBackoff
	// ActAdmit caps concurrent Atomic sections with a token gate.
	ActAdmit
	// ActSigWiden rehashes every access signature into a wider geometry.
	ActSigWiden
	// ActSerialize forces every new section through the
	// serialized-irrevocable fallback.
	ActSerialize
)

// Action is one rung of the mitigation ladder.
type Action struct {
	Kind ActionKind
	// CM names the policy for ActCM (see cm.ByName).
	CM string
	// Shift is the absolute back-off boost for ActBackoff.
	Shift uint
	// Limit is the admission cap for ActAdmit (0 = half the bound threads,
	// minimum 1).
	Limit int
	// Scale multiplies the signature width for ActSigWiden (0 = 4x).
	Scale int
}

// Spec returns the rung's canonical spec-string form.
func (a Action) Spec() string {
	switch a.Kind {
	case ActCM:
		return "cm:" + a.CM
	case ActBackoff:
		return fmt.Sprintf("backoff:%d", a.Shift)
	case ActAdmit:
		if a.Limit <= 0 {
			return "admit:auto"
		}
		return fmt.Sprintf("admit:%d", a.Limit)
	case ActSigWiden:
		return fmt.Sprintf("sig:%d", a.Scale)
	case ActSerialize:
		return "serialize"
	}
	return fmt.Sprintf("Action(%d)", int(a.Kind))
}

// LadderSpec renders a ladder as the comma-joined spec string ParseLadder
// accepts.
func LadderSpec(ladder []Action) string {
	parts := make([]string, len(ladder))
	for i, a := range ladder {
		parts[i] = a.Spec()
	}
	return strings.Join(parts, ",")
}

// ParseLadder parses a comma-separated rung list: "cm:NAME", "backoff:N",
// "admit:N" (or "admit:auto" for half the worker count), "sig:N",
// "serialize".
func ParseLadder(spec string) ([]Action, error) {
	var ladder []Action
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, arg, hasArg := strings.Cut(tok, ":")
		var a Action
		switch name {
		case "cm":
			if _, ok := cm.ByName(arg); !ok {
				return nil, fmt.Errorf("governor: unknown contention manager %q", arg)
			}
			a = Action{Kind: ActCM, CM: arg}
		case "backoff":
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("governor: bad backoff shift %q", arg)
			}
			a = Action{Kind: ActBackoff, Shift: uint(n)}
		case "admit":
			if arg == "auto" || !hasArg {
				a = Action{Kind: ActAdmit}
				break
			}
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("governor: bad admission cap %q", arg)
			}
			a = Action{Kind: ActAdmit, Limit: n}
		case "sig":
			n, err := strconv.Atoi(arg)
			if err != nil || n < 2 {
				return nil, fmt.Errorf("governor: bad signature scale %q", arg)
			}
			a = Action{Kind: ActSigWiden, Scale: n}
		case "serialize":
			if hasArg {
				return nil, fmt.Errorf("governor: serialize takes no argument")
			}
			a = Action{Kind: ActSerialize}
		default:
			return nil, fmt.Errorf("governor: unknown rung %q", tok)
		}
		ladder = append(ladder, a)
	}
	if len(ladder) == 0 {
		return nil, fmt.Errorf("governor: empty ladder spec")
	}
	return ladder, nil
}

// DefaultLadder is the stock mitigation sequence: calm the policy first
// (Polka's karma-weighted back-off breaks symmetric duels Aggressive/Timid
// cannot), then stretch back-off, then shed load, then widen signatures,
// and only then serialize.
func DefaultLadder() []Action {
	return []Action{
		{Kind: ActCM, CM: "Polka"},
		{Kind: ActBackoff, Shift: 3},
		{Kind: ActAdmit},
		{Kind: ActSigWiden, Scale: 4},
		{Kind: ActSerialize},
	}
}

// Thresholds are the per-interval classification cut-offs.
type Thresholds struct {
	// AbortRatio marks an interval Contended at or above this
	// aborts/attempts ratio (default 0.5).
	AbortRatio float64
	// SigFP marks an interval SigSaturated at or above this audited
	// false-positive rate (default 0.05), given at least SigFPMinTests
	// ground-truth-negative membership tests (default 32).
	SigFP         float64
	SigFPMinTests uint64
	// OTSpillPerCommit marks an interval OverflowThrashing at or above this
	// many overflow-table spills per commit (default 16).
	OTSpillPerCommit float64
}

// Config parameterizes a governor.
type Config struct {
	// Ladder is the mitigation sequence (nil selects DefaultLadder).
	Ladder []Action
	// RaiseAfter is how many consecutive unhealthy intervals precede a
	// raise (<=0 selects 2); LowerAfter how many consecutive healthy
	// intervals precede a lower (<=0 selects 4).
	RaiseAfter int
	LowerAfter int
	// Cooldown is how many intervals after any transition the governor
	// holds still, letting the mitigation take effect before judging it
	// (<0 selects 2; 0 is honored).
	Cooldown int
	// Thresholds override the classification cut-offs (zero fields select
	// the defaults above).
	Thresholds Thresholds
}

// Transition is one recorded ladder move.
type Transition struct {
	At     sim.Time
	Frame  int
	From   int
	To     int
	State  State
	Action string // spec of the rung applied (raise) or undone (lower)
}

// undoRec is what a raise saves so the matching lower can revert it.
type undoRec struct {
	kind       ActionKind
	prevCM     cm.Manager
	prevShift  uint
	prevLimit  int
	prevSerial bool
	prevSig    signature.Config
	sigApplied bool
}

// Governor walks the ladder for one run. All state is owned by the
// simulation thread that calls Observe; nothing here is safe for concurrent
// use, and nothing here needs to be.
type Governor struct {
	cfg Config

	rt      *core.Runtime
	threads int
	tel     *telemetry.Registry
	fl      *flight.Recorder

	level       int
	unhealthy   int
	healthy     int
	cooldown    int
	lastState   State
	lastFrame   int
	undo        []undoRec
	transitions []Transition
}

// New returns a governor with defaults applied.
func New(cfg Config) *Governor {
	if cfg.Ladder == nil {
		cfg.Ladder = DefaultLadder()
	}
	if cfg.RaiseAfter <= 0 {
		cfg.RaiseAfter = 2
	}
	if cfg.LowerAfter <= 0 {
		cfg.LowerAfter = 4
	}
	if cfg.Cooldown < 0 {
		cfg.Cooldown = 2
	}
	if cfg.Thresholds.AbortRatio == 0 {
		cfg.Thresholds.AbortRatio = 0.5
	}
	if cfg.Thresholds.SigFP == 0 {
		cfg.Thresholds.SigFP = 0.05
	}
	if cfg.Thresholds.SigFPMinTests == 0 {
		cfg.Thresholds.SigFPMinTests = 32
	}
	if cfg.Thresholds.OTSpillPerCommit == 0 {
		cfg.Thresholds.OTSpillPerCommit = 16
	}
	return &Governor{cfg: cfg, lastFrame: -1}
}

// Config returns the effective (default-filled) configuration.
func (g *Governor) Config() Config { return g.cfg }

// Bind points the governor at one run's runtime. threads is the worker
// count (the admission rung's default cap derives from it). Must be called
// before the run starts.
func (g *Governor) Bind(rt *core.Runtime, threads int) {
	g.rt = rt
	g.threads = threads
	g.tel = rt.System().Telemetry()
	g.fl = rt.System().Flight()
}

// Level returns the current ladder level (0 = no mitigation in force;
// level n means rungs [0, n) are applied).
func (g *Governor) Level() int {
	if g == nil {
		return 0
	}
	return g.level
}

// LastState returns the most recent interval classification.
func (g *Governor) LastState() State {
	if g == nil {
		return Healthy
	}
	return g.lastState
}

// Transitions returns the recorded ladder moves, in order.
func (g *Governor) Transitions() []Transition {
	if g == nil {
		return nil
	}
	return g.transitions
}

// TransitionLog renders the transitions in a canonical text form, one line
// each — the bit-compare artifact of the determinism guarantee.
func (g *Governor) TransitionLog() string {
	if g == nil {
		return ""
	}
	var b strings.Builder
	for _, tr := range g.transitions {
		fmt.Fprintf(&b, "t=%d frame=%d level %d->%d state=%s action=%s\n",
			tr.At, tr.Frame, tr.From, tr.To, tr.State, tr.Action)
	}
	return b.String()
}

// Annotate attaches the governor's current state to a frame about to be
// published (observatory.Pump.SetAnnotator). It runs before Observe sees
// the frame, so the sample reflects the level in force while the frame's
// interval ran.
func (g *Governor) Annotate(f *observatory.Frame) {
	if g == nil || f == nil {
		return
	}
	f.Gov = &observatory.GovSample{
		Level:       g.level,
		Rungs:       len(g.cfg.Ladder),
		State:       g.lastState.String(),
		Transitions: len(g.transitions),
	}
}

// Classify maps one frame to a health state using only the frame's own
// interval: the Delta counters, and the flight records timestamped inside
// [Start, End]. Exported for tests and the watch display.
func (g *Governor) Classify(f *observatory.Frame) State {
	if f == nil {
		return Healthy
	}
	th := g.cfg.Thresholds
	// Interval-local conflict-graph pathologies. The frame's Report spans
	// the whole sliding window; re-analyzing just this interval's records
	// makes resolved pathologies age out immediately.
	if f.Report != nil {
		recs := f.Recent
		lo := 0
		for lo < len(recs) && recs[lo].At < f.Start {
			lo++
		}
		if lo < len(recs) {
			rep := conflictgraph.Analyze(recs[lo:], conflictgraph.Options{Cores: f.Meta.Cores})
			if rep.Has(conflictgraph.AbortCycle) {
				return AbortCycling
			}
			if rep.Has(conflictgraph.StarvationChain) {
				return Starving
			}
		}
	}
	if tests := f.Delta.Total(telemetry.CtrSigFalsePos) + f.Delta.Total(telemetry.CtrSigTrueNeg); tests >= th.SigFPMinTests {
		fp := float64(f.Delta.Total(telemetry.CtrSigFalsePos)) / float64(tests)
		if fp >= th.SigFP {
			return SigSaturated
		}
	}
	if commits := f.Delta.Total(telemetry.CtrTxnCommits); commits > 0 {
		if spills := f.Delta.Total(telemetry.CtrOTSpill); float64(spills)/float64(commits) >= th.OTSpillPerCommit {
			return OverflowThrashing
		}
	}
	if f.AbortRatio() >= th.AbortRatio {
		return Contended
	}
	return Healthy
}

// Observe feeds the governor one published frame. It classifies the
// interval, updates the hysteresis counters, and — outside cooldown — moves
// one rung up or down. Frames already seen (the bus republishes the latest
// on every read) and nil frames are ignored. Must run inside the
// simulation, on the governor's own thread.
func (g *Governor) Observe(f *observatory.Frame) {
	if g == nil || f == nil || g.rt == nil || f.Index == g.lastFrame {
		return
	}
	g.lastFrame = f.Index
	state := g.Classify(f)
	g.lastState = state
	if state == Healthy {
		g.healthy++
		g.unhealthy = 0
	} else {
		g.unhealthy++
		g.healthy = 0
	}
	if g.cooldown > 0 {
		g.cooldown--
		return
	}
	switch {
	case state != Healthy && g.unhealthy >= g.cfg.RaiseAfter && g.level < len(g.cfg.Ladder):
		g.raise(f, state)
	case state == Healthy && g.healthy >= g.cfg.LowerAfter && g.level > 0:
		g.lower(f, state)
	}
}

// raise applies the next rung.
func (g *Governor) raise(f *observatory.Frame, state State) {
	a := g.cfg.Ladder[g.level]
	g.undo = append(g.undo, g.apply(a))
	g.step(f, state, g.level+1, a.Spec())
	g.unhealthy = 0
}

// lower reverts the topmost applied rung.
func (g *Governor) lower(f *observatory.Frame, state State) {
	u := g.undo[len(g.undo)-1]
	g.undo = g.undo[:len(g.undo)-1]
	a := g.cfg.Ladder[g.level-1]
	g.revert(u)
	g.step(f, state, g.level-1, a.Spec())
	g.healthy = 0
}

// step records one transition (log, flight, telemetry) and starts the
// cooldown.
func (g *Governor) step(f *observatory.Frame, state State, to int, spec string) {
	from := g.level
	g.level = to
	g.cooldown = g.cfg.Cooldown
	g.transitions = append(g.transitions, Transition{
		At: f.End, Frame: f.Index, From: from, To: to, State: state, Action: spec,
	})
	g.tel.Inc(0, telemetry.CtrGovStep)
	g.fl.Rec(0, f.End, flight.GovStep, from, uint8(to), 0)
}

// apply turns one rung on and returns what the matching revert needs.
func (g *Governor) apply(a Action) undoRec {
	rt := g.rt
	u := undoRec{kind: a.Kind}
	switch a.Kind {
	case ActCM:
		u.prevCM = rt.CM()
		if m, ok := cm.ByName(a.CM); ok {
			rt.SetCM(m)
		}
	case ActBackoff:
		u.prevShift = rt.BackoffBoost()
		rt.SetBackoffBoost(a.Shift)
	case ActAdmit:
		u.prevLimit = rt.AdmitLimit()
		limit := a.Limit
		if limit <= 0 {
			limit = g.threads / 2
			if limit < 1 {
				limit = 1
			}
		}
		rt.SetAdmitLimit(limit)
	case ActSigWiden:
		sys := rt.System()
		u.prevSig = sys.Config().Sig
		scale := a.Scale
		if scale < 2 {
			scale = 4
		}
		next := u.prevSig
		next.Bits *= scale
		u.sigApplied = sys.WidenSignatures(next) == nil
	case ActSerialize:
		u.prevSerial = rt.ForceSerial()
		rt.SetForceSerial(true)
	}
	return u
}

// revert undoes one rung. A signature rehash back to the original geometry
// can itself be refused (summary signatures installed in the meantime); the
// wider filters are conservative, so staying wide is safe and the level
// still lowers.
func (g *Governor) revert(u undoRec) {
	rt := g.rt
	switch u.kind {
	case ActCM:
		rt.SetCM(u.prevCM)
	case ActBackoff:
		rt.SetBackoffBoost(u.prevShift)
	case ActAdmit:
		rt.SetAdmitLimit(u.prevLimit)
	case ActSigWiden:
		if u.sigApplied {
			_ = rt.System().WidenSignatures(u.prevSig)
		}
	case ActSerialize:
		rt.SetForceSerial(u.prevSerial)
	}
}
