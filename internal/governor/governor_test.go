package governor

import (
	"strings"
	"testing"

	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/observatory"
	"flextm/internal/telemetry"
	"flextm/internal/tmesi"
)

// frame builds a minimal synthetic frame: one interval with the given
// per-interval counter deltas on a single core.
func frame(idx int, set func(ctr *[telemetry.NumCounters]uint64)) *observatory.Frame {
	f := &observatory.Frame{
		Index: idx,
		Start: uint64(idx) * 1000,
		End:   uint64(idx+1) * 1000,
		Delta: telemetry.Snapshot{Cores: make([]telemetry.CoreSnapshot, 1)},
	}
	if set != nil {
		set(&f.Delta.Cores[0].Counters)
	}
	return f
}

func healthyFrame(idx int) *observatory.Frame {
	return frame(idx, func(c *[telemetry.NumCounters]uint64) {
		c[telemetry.CtrTxnCommits] = 10
	})
}

func contendedFrame(idx int) *observatory.Frame {
	return frame(idx, func(c *[telemetry.NumCounters]uint64) {
		c[telemetry.CtrTxnCommits] = 2
		c[telemetry.CtrTxnAborts] = 8
	})
}

func TestLadderSpecRoundTrips(t *testing.T) {
	spec := LadderSpec(DefaultLadder())
	ladder, err := ParseLadder(spec)
	if err != nil {
		t.Fatalf("ParseLadder(%q): %v", spec, err)
	}
	if got := LadderSpec(ladder); got != spec {
		t.Fatalf("round trip changed the spec: %q -> %q", spec, got)
	}
	// Custom ladder with every rung type.
	const custom = "cm:Karma,backoff:2,admit:3,sig:8,serialize"
	ladder, err = ParseLadder(custom)
	if err != nil {
		t.Fatalf("ParseLadder(%q): %v", custom, err)
	}
	if got := LadderSpec(ladder); got != custom {
		t.Fatalf("custom round trip: %q -> %q", custom, got)
	}
}

func TestParseLadderRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",                // empty
		"cm:NoSuchPolicy", // unknown manager
		"backoff:0",       // shift must be >= 1
		"backoff:x",
		"admit:0", // cap must be >= 1
		"sig:1",   // scale must be >= 2
		"serialize:1",
		"flood:3", // unknown rung
	} {
		if _, err := ParseLadder(spec); err == nil {
			t.Errorf("ParseLadder(%q): want error, got nil", spec)
		}
	}
}

func TestClassifyThresholds(t *testing.T) {
	g := New(Config{})
	cases := []struct {
		name string
		f    *observatory.Frame
		want State
	}{
		{"healthy", healthyFrame(0), Healthy},
		{"contended", contendedFrame(0), Contended},
		{"sig-saturated", frame(0, func(c *[telemetry.NumCounters]uint64) {
			c[telemetry.CtrTxnCommits] = 10
			c[telemetry.CtrSigFalsePos] = 10
			c[telemetry.CtrSigTrueNeg] = 90
		}), SigSaturated},
		{"sig-below-min-tests", frame(0, func(c *[telemetry.NumCounters]uint64) {
			c[telemetry.CtrTxnCommits] = 10
			c[telemetry.CtrSigFalsePos] = 4 // 100% FP but only 4 tests
		}), Healthy},
		{"overflow-thrashing", frame(0, func(c *[telemetry.NumCounters]uint64) {
			c[telemetry.CtrTxnCommits] = 2
			c[telemetry.CtrOTSpill] = 64
		}), OverflowThrashing},
		{"calm-interval", frame(0, nil), Healthy},
		{"nil-frame", nil, Healthy},
	}
	for _, tc := range cases {
		if got := g.Classify(tc.f); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// boundGovernor returns a governor bound to a real (idle) runtime so
// apply/revert have knobs to turn.
func boundGovernor(t *testing.T, cfg Config) (*Governor, *core.Runtime) {
	t.Helper()
	sys := tmesi.New(tmesi.DefaultConfig())
	rt := core.New(sys, core.Eager, cm.Aggressive{})
	g := New(cfg)
	g.Bind(rt, 4)
	return g, rt
}

func TestHysteresisRaisesAndLowers(t *testing.T) {
	g, rt := boundGovernor(t, Config{
		Ladder:     []Action{{Kind: ActCM, CM: "Polka"}, {Kind: ActSerialize}},
		RaiseAfter: 2, LowerAfter: 2, Cooldown: 0,
	})
	idx := 0
	next := func(f func(int) *observatory.Frame) { g.Observe(f(idx)); idx++ }

	next(contendedFrame)
	if g.Level() != 0 {
		t.Fatalf("one unhealthy interval raised the level to %d", g.Level())
	}
	next(contendedFrame)
	if g.Level() != 1 {
		t.Fatalf("level after 2 unhealthy intervals = %d, want 1", g.Level())
	}
	if _, ok := rt.CM().(*cm.Polka); !ok {
		t.Fatalf("rung 1 did not swap the CM: %T", rt.CM())
	}
	next(contendedFrame)
	next(contendedFrame)
	if g.Level() != 2 || !rt.ForceSerial() {
		t.Fatalf("level=%d forceSerial=%v after 4 unhealthy, want 2/true", g.Level(), rt.ForceSerial())
	}
	// A healthy interval resets the unhealthy streak and vice versa.
	next(healthyFrame)
	next(contendedFrame)
	next(healthyFrame)
	if g.Level() != 2 {
		t.Fatalf("alternating intervals moved the level to %d", g.Level())
	}
	next(healthyFrame)
	if g.Level() != 1 || rt.ForceSerial() {
		t.Fatalf("level=%d forceSerial=%v after healthy streak, want 1/false", g.Level(), rt.ForceSerial())
	}
	next(healthyFrame)
	next(healthyFrame)
	if g.Level() != 0 {
		t.Fatalf("level=%d after full healthy run-out, want 0", g.Level())
	}
	if _, ok := rt.CM().(cm.Aggressive); !ok {
		t.Fatalf("lowering did not restore the original CM: %T", rt.CM())
	}
	if len(g.Transitions()) != 4 {
		t.Fatalf("transitions = %d, want 4", len(g.Transitions()))
	}
	log := g.TransitionLog()
	for _, want := range []string{"level 0->1", "level 1->2", "level 2->1", "level 1->0", "action=cm:Polka", "action=serialize"} {
		if !strings.Contains(log, want) {
			t.Errorf("transition log missing %q:\n%s", want, log)
		}
	}
}

func TestCooldownHoldsTheLadderStill(t *testing.T) {
	g, _ := boundGovernor(t, Config{
		Ladder:     []Action{{Kind: ActCM, CM: "Polka"}, {Kind: ActSerialize}},
		RaiseAfter: 1, LowerAfter: 1, Cooldown: 3,
	})
	g.Observe(contendedFrame(0))
	if g.Level() != 1 {
		t.Fatalf("level = %d after first unhealthy interval (RaiseAfter=1), want 1", g.Level())
	}
	// Three cooldown intervals: unhealthy streak keeps building but no move.
	for i := 1; i <= 3; i++ {
		g.Observe(contendedFrame(i))
		if g.Level() != 1 {
			t.Fatalf("level moved to %d during cooldown (frame %d)", g.Level(), i)
		}
	}
	g.Observe(contendedFrame(4))
	if g.Level() != 2 {
		t.Fatalf("level = %d after cooldown expired, want 2", g.Level())
	}
}

func TestObserveDedupsRepublishedFrames(t *testing.T) {
	g, _ := boundGovernor(t, Config{RaiseAfter: 2, Cooldown: 0})
	f := contendedFrame(0)
	// The bus republishes the latest frame on every read; observing the same
	// index twice must count as one interval.
	g.Observe(f)
	g.Observe(f)
	if g.Level() != 0 {
		t.Fatalf("duplicate frame observations raised the level to %d", g.Level())
	}
	g.Observe(contendedFrame(1))
	if g.Level() != 1 {
		t.Fatalf("level = %d after two distinct unhealthy frames, want 1", g.Level())
	}
}

func TestBackoffAndAdmitRungsApplyAndRevert(t *testing.T) {
	g, rt := boundGovernor(t, Config{
		Ladder:     []Action{{Kind: ActBackoff, Shift: 3}, {Kind: ActAdmit}},
		RaiseAfter: 1, LowerAfter: 1, Cooldown: 0,
	})
	g.Observe(contendedFrame(0))
	if rt.BackoffBoost() != 3 {
		t.Fatalf("backoff boost = %d, want 3", rt.BackoffBoost())
	}
	g.Observe(contendedFrame(1))
	// Default admission cap: threads/2 (bound with 4 threads).
	if rt.AdmitLimit() != 2 {
		t.Fatalf("admit limit = %d, want 2", rt.AdmitLimit())
	}
	g.Observe(healthyFrame(2))
	if rt.AdmitLimit() != 0 {
		t.Fatalf("admit limit = %d after lower, want 0", rt.AdmitLimit())
	}
	g.Observe(healthyFrame(3))
	if rt.BackoffBoost() != 0 {
		t.Fatalf("backoff boost = %d after lower, want 0", rt.BackoffBoost())
	}
}

func TestNilGovernorIsInert(t *testing.T) {
	var g *Governor
	if g.Level() != 0 || g.LastState() != Healthy || g.Transitions() != nil || g.TransitionLog() != "" {
		t.Fatal("nil governor accessors are not inert")
	}
	g.Observe(contendedFrame(0)) // must not panic
	g.Annotate(&observatory.Frame{})
}

func TestAnnotateFillsGovSample(t *testing.T) {
	g, _ := boundGovernor(t, Config{RaiseAfter: 1, Cooldown: 0})
	g.Observe(contendedFrame(0))
	f := healthyFrame(1)
	g.Annotate(f)
	if f.Gov == nil {
		t.Fatal("Annotate left Gov nil")
	}
	if f.Gov.Level != 1 || f.Gov.Rungs != len(DefaultLadder()) || f.Gov.Transitions != 1 {
		t.Fatalf("GovSample = %+v", *f.Gov)
	}
	if f.Gov.State != "contended" {
		t.Fatalf("GovSample.State = %q, want contended", f.Gov.State)
	}
}
