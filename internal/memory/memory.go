// Package memory models the committed physical memory image of the
// simulated machine and a simple heap allocator over it.
//
// Addresses are 64-bit and refer to 8-byte words; a cache line is
// LineWords (8) consecutive words, 64 bytes. The image holds only committed
// state: speculative values live in L1 TMI lines and overflow tables, never
// here (see internal/tmesi).
package memory

import "fmt"

const (
	// WordBytes is the size of one addressable word.
	WordBytes = 8
	// LineWords is the number of words per cache line.
	LineWords = 8
	// LineBytes is the size of one cache line.
	LineBytes = WordBytes * LineWords
)

// Addr is a simulated physical word address (byte address / WordBytes).
// Keeping word granularity avoids sub-word logic everywhere; the paper's
// workloads are all word-structured.
type Addr uint64

// LineAddr is the address of a cache line (word address / LineWords).
type LineAddr uint64

// Line returns the cache line containing a.
func (a Addr) Line() LineAddr { return LineAddr(a / LineWords) }

// Offset returns a's word offset within its line.
func (a Addr) Offset() int { return int(a % LineWords) }

// WordOf returns the address of word offset off within line l.
func (l LineAddr) WordOf(off int) Addr { return Addr(uint64(l)*LineWords + uint64(off)) }

// LineData is the payload of one cache line.
type LineData [LineWords]uint64

// Image is the committed memory image. The zero value is not usable; call
// NewImage.
type Image struct {
	lines map[LineAddr]*LineData
}

// NewImage returns an empty image; unwritten memory reads as zero.
func NewImage() *Image {
	return &Image{lines: make(map[LineAddr]*LineData)}
}

// ReadWord returns the committed value at a.
func (im *Image) ReadWord(a Addr) uint64 {
	if ld, ok := im.lines[a.Line()]; ok {
		return ld[a.Offset()]
	}
	return 0
}

// WriteWord sets the committed value at a.
func (im *Image) WriteWord(a Addr, v uint64) {
	im.line(a.Line())[a.Offset()] = v
}

// ReadLine copies the committed contents of line l into dst.
func (im *Image) ReadLine(l LineAddr, dst *LineData) {
	if ld, ok := im.lines[l]; ok {
		*dst = *ld
	} else {
		*dst = LineData{}
	}
}

// WriteLine replaces the committed contents of line l with src.
func (im *Image) WriteLine(l LineAddr, src *LineData) {
	*im.line(l) = *src
}

// Lines returns the number of lines ever written.
func (im *Image) Lines() int { return len(im.lines) }

func (im *Image) line(l LineAddr) *LineData {
	ld, ok := im.lines[l]
	if !ok {
		ld = new(LineData)
		im.lines[l] = ld
	}
	return ld
}

// Allocator is a bump allocator with per-size free lists over an Image's
// address space. It models the process heap: workload setup and transaction
// bodies allocate simulated objects from it. Allocation itself is treated as
// a constant-cost runtime service (the paper's workloads pre-allocate or
// malloc outside the measured path; FlexWatcher charges explicit costs).
type Allocator struct {
	next Addr
	free map[int][]Addr
}

// HeapBase is the first heap address. Low addresses are reserved for runtime
// metadata (status words, locks, logs) so that workload data and metadata
// never share a cache line by accident.
const HeapBase Addr = 1 << 20

// NewAllocator returns an allocator starting at HeapBase.
func NewAllocator() *Allocator {
	return &Allocator{next: HeapBase, free: make(map[int][]Addr)}
}

// Alloc returns the address of a fresh region of words words, aligned to a
// cache line. Line alignment keeps distinct objects on distinct lines, as
// the paper's 256-byte RBTree nodes are.
func (al *Allocator) Alloc(words int) Addr {
	if words <= 0 {
		panic(fmt.Sprintf("memory: Alloc(%d)", words))
	}
	rounded := (words + LineWords - 1) / LineWords * LineWords
	if fl := al.free[rounded]; len(fl) > 0 {
		a := fl[len(fl)-1]
		al.free[rounded] = fl[:len(fl)-1]
		return a
	}
	a := al.next
	al.next += Addr(rounded)
	return a
}

// Free returns a region previously obtained from Alloc with the same size.
func (al *Allocator) Free(a Addr, words int) {
	rounded := (words + LineWords - 1) / LineWords * LineWords
	al.free[rounded] = append(al.free[rounded], a)
}

// Brk returns the current top of the heap (exclusive).
func (al *Allocator) Brk() Addr { return al.next }
