package memory

import (
	"testing"
	"testing/quick"
)

func TestAddrLineOffset(t *testing.T) {
	cases := []struct {
		a    Addr
		line LineAddr
		off  int
	}{
		{0, 0, 0},
		{7, 0, 7},
		{8, 1, 0},
		{65, 8, 1},
	}
	for _, c := range cases {
		if c.a.Line() != c.line || c.a.Offset() != c.off {
			t.Errorf("Addr(%d): line=%d off=%d, want %d/%d",
				c.a, c.a.Line(), c.a.Offset(), c.line, c.off)
		}
		if c.line.WordOf(c.off) != c.a {
			t.Errorf("WordOf round trip failed for %d", c.a)
		}
	}
}

func TestImageReadWrite(t *testing.T) {
	im := NewImage()
	if v := im.ReadWord(123); v != 0 {
		t.Fatalf("unwritten word = %d, want 0", v)
	}
	im.WriteWord(123, 0xDEAD)
	if v := im.ReadWord(123); v != 0xDEAD {
		t.Fatalf("word = %#x, want 0xDEAD", v)
	}
	// Neighboring word in the same line is untouched.
	if v := im.ReadWord(122); v != 0 {
		t.Fatalf("neighbor = %d, want 0", v)
	}
}

func TestImageLineOps(t *testing.T) {
	im := NewImage()
	var src LineData
	for i := range src {
		src[i] = uint64(i) * 11
	}
	im.WriteLine(5, &src)
	var dst LineData
	im.ReadLine(5, &dst)
	if dst != src {
		t.Fatalf("line round trip: got %v want %v", dst, src)
	}
	// Word view sees line writes.
	if v := im.ReadWord(LineAddr(5).WordOf(3)); v != 33 {
		t.Fatalf("word view = %d, want 33", v)
	}
	var zero LineData
	im.ReadLine(99, &dst)
	if dst != zero {
		t.Fatalf("unwritten line not zero: %v", dst)
	}
}

func TestImageWordLineConsistency(t *testing.T) {
	f := func(seed uint64, vals [LineWords]uint64) bool {
		im := NewImage()
		l := LineAddr(seed % 1000)
		for i, v := range vals {
			im.WriteWord(l.WordOf(i), v)
		}
		var got LineData
		im.ReadLine(l, &got)
		return got == LineData(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorDistinctLineAligned(t *testing.T) {
	al := NewAllocator()
	seen := map[Addr]bool{}
	for i := 0; i < 100; i++ {
		a := al.Alloc(3)
		if a%LineWords != 0 {
			t.Fatalf("allocation %d not line aligned", a)
		}
		if seen[a] {
			t.Fatalf("address %d returned twice", a)
		}
		seen[a] = true
	}
}

func TestAllocatorReuseAfterFree(t *testing.T) {
	al := NewAllocator()
	a := al.Alloc(16)
	al.Free(a, 16)
	b := al.Alloc(16)
	if a != b {
		t.Fatalf("freed block not reused: %d vs %d", a, b)
	}
}

func TestAllocatorDisjointRegions(t *testing.T) {
	f := func(sizes []uint8) bool {
		al := NewAllocator()
		type region struct{ a, end Addr }
		var regions []region
		for _, s := range sizes {
			w := int(s%64) + 1
			a := al.Alloc(w)
			for _, r := range regions {
				if a < r.end && r.a < a+Addr(w) {
					return false
				}
			}
			regions = append(regions, region{a, a + Addr(w)})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	NewAllocator().Alloc(0)
}
