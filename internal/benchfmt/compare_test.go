package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadAcceptsAnyBenchSchemaVersion(t *testing.T) {
	// Version skew is the comparer's call, not the reader's: a future
	// flextm-bench/v2 artifact must parse so Compare can flag the mismatch.
	a, err := Read(strings.NewReader(`{"schema":"flextm-bench/v2","cells":[]}`))
	if err != nil {
		t.Fatalf("future schema version rejected: %v", err)
	}
	if a.Schema != "flextm-bench/v2" {
		t.Fatalf("schema = %q", a.Schema)
	}
	if _, err := Read(strings.NewReader(`{"schema":"other-tool/v1","cells":[]}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

func TestCompareFailsOnSchemaMismatch(t *testing.T) {
	old := sampleArtifact()
	new_ := sampleArtifact()
	new_.Schema = "flextm-bench/v2"
	res := Compare(old, new_, 0.10)
	if !res.SchemaMismatch {
		t.Fatal("schema skew not detected")
	}
	if res.Ok() {
		t.Fatal("schema mismatch must fail the comparison even with zero regressions")
	}
	if res.SchemaOld != Schema || res.SchemaNew != "flextm-bench/v2" {
		t.Fatalf("recorded schemas: old=%q new=%q", res.SchemaOld, res.SchemaNew)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "SCHEMA MISMATCH") {
		t.Fatalf("print does not surface the mismatch:\n%s", buf.String())
	}
}

func TestCompareReportsMetricGaps(t *testing.T) {
	// A cell metric recorded in only one artifact is reported by name, not
	// silently skipped: a baseline captured without telemetry must not read
	// as "compared clean".
	old := sampleArtifact()
	new_ := sampleArtifact()
	new_.Cells[0].Attribution = nil // old has none either; no gap
	old.Cells[1].Pathologies = map[string]uint64{"abort-cycle": 1}
	new_.Cells[2].Throughput = 0

	res := Compare(old, new_, 0.10)
	if res.SchemaMismatch {
		t.Fatal("same-schema compare flagged mismatch")
	}
	// Gaps are informational: they never fail the comparison on their own.
	if !res.Ok() {
		t.Fatalf("gaps failed the comparison: %+v", res.Regressions)
	}
	joined := strings.Join(res.MetricGaps, "\n")
	if !strings.Contains(joined, "pathologies only in old artifact") {
		t.Errorf("pathology gap not reported: %q", joined)
	}
	if !strings.Contains(joined, "throughput only in old artifact") {
		t.Errorf("throughput gap not reported: %q", joined)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "metric gap") {
		t.Fatalf("print does not list gaps:\n%s", buf.String())
	}
}

func TestCompareNoGapsWhenBothSidesRecord(t *testing.T) {
	res := Compare(sampleArtifact(), sampleArtifact(), 0.10)
	if len(res.MetricGaps) != 0 {
		t.Fatalf("self-compare reported gaps: %v", res.MetricGaps)
	}
}

func TestCompareSkipsThroughputWhenAbsentBothSides(t *testing.T) {
	old := sampleArtifact()
	new_ := sampleArtifact()
	old.Cells[0].Throughput = 0
	new_.Cells[0].Throughput = 0
	res := Compare(old, new_, 0.10)
	if !res.Ok() {
		t.Fatalf("absent-on-both throughput flagged: %+v", res.Regressions)
	}
	if len(res.MetricGaps) != 0 {
		t.Fatalf("absent-on-both throughput is not a gap: %v", res.MetricGaps)
	}
}
