// Package benchfmt defines the canonical perf artifact (`BENCH_*.json`)
// recorded by `paperbench -bench-out` and compared by `paperbench
// -compare`: one cell per (figure, system, workload, threads) data point
// with throughput, abort rate, cycle-attribution split, and the
// conflict-graph pathology summary. Because the simulator is deterministic,
// artifacts are byte-stable for a fixed configuration, so a checked-in
// baseline plus a CI compare turns every future PR into a point on the
// repo's recorded perf trajectory.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"flextm/internal/telemetry"
)

// Schema is the artifact format identifier.
const Schema = "flextm-bench/v1"

// Cell is one data point of a sweep.
type Cell struct {
	Figure   string `json:"figure"`
	System   string `json:"system"`
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`

	Commits    uint64  `json:"commits"`
	Aborts     uint64  `json:"aborts"`
	Cycles     uint64  `json:"cycles"`
	Throughput float64 `json:"throughput"` // txn per million cycles
	AbortRate  float64 `json:"abortRate"`  // aborts per commit

	// Attribution is the useful/stall/aborted/commit-overhead cycle split
	// (present when the sweep ran with telemetry attached).
	Attribution *telemetry.Attribution `json:"attribution,omitempty"`
	// Pathologies counts detected contention pathologies by kind (present
	// when the sweep ran with the flight recorder attached).
	Pathologies map[string]uint64 `json:"pathologies,omitempty"`
	// CriticalPath summarizes the causal makespan analysis (present when
	// the sweep ran with the flight recorder attached).
	CriticalPath *CriticalPath `json:"criticalPath,omitempty"`
}

// CriticalPath is the causal analysis digest of one cell: how much of the
// run's makespan the longest dependent chain explains, and which lines it
// blames. A plain-data mirror of internal/causal's report, so artifacts
// stay decodable without importing the analyzer.
type CriticalPath struct {
	PathCycles uint64       `json:"pathCycles"`
	Makespan   uint64       `json:"makespan"`
	Coverage   float64      `json:"coverage"`
	TopBlame   []BlameEntry `json:"topBlame,omitempty"`
}

// BlameEntry is one blamed line on a cell's critical path.
type BlameEntry struct {
	Line     uint64 `json:"line"`
	Cycles   uint64 `json:"cycles"`
	FPCycles uint64 `json:"fpCycles,omitempty"`
}

// Key identifies a cell across artifacts.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/%s/%s@%d", c.Figure, c.System, c.Workload, c.Threads)
}

// Artifact is one recorded sweep.
type Artifact struct {
	Schema string `json:"schema"`
	// Label names the recording (PR number, CI run, ...); free-form.
	Label string `json:"label,omitempty"`
	// Ops is the per-thread operation count the sweep ran with.
	Ops int `json:"ops,omitempty"`
	// Notes carries free-form recording context (e.g. the measured
	// serial-vs-parallel sweep speedup); ignored by Compare.
	Notes map[string]string `json:"notes,omitempty"`
	Cells []Cell            `json:"cells"`
}

// New returns an empty artifact with the current schema.
func New(label string, ops int) *Artifact {
	return &Artifact{Schema: Schema, Label: label, Ops: ops}
}

// Add appends a cell.
func (a *Artifact) Add(c Cell) { a.Cells = append(a.Cells, c) }

// Sort orders cells by key, making artifacts diff-stable regardless of
// sweep order.
func (a *Artifact) Sort() {
	sort.Slice(a.Cells, func(i, j int) bool { return a.Cells[i].Key() < a.Cells[j].Key() })
}

// Write writes the artifact as indented JSON.
func (a *Artifact) Write(w io.Writer) error {
	a.Sort()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteFile writes the artifact to path.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses an artifact. Any "flextm-bench/" schema version parses —
// version skew is the comparer's call to make (Compare flags it), not a
// reason to refuse reading the file.
func Read(r io.Reader) (*Artifact, error) {
	var a Artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if !strings.HasPrefix(a.Schema, "flextm-bench/") {
		return nil, fmt.Errorf("benchfmt: unknown schema %q (want %q)", a.Schema, Schema)
	}
	return &a, nil
}

// ReadFile parses the artifact at path.
func ReadFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// Regression is one flagged cell metric.
type Regression struct {
	Key    string  `json:"key"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Delta is the relative change, signed so that worse is positive
	// (throughput drop, abort-rate growth).
	Delta float64 `json:"delta"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.3f -> %.3f (%.1f%% worse)", r.Key, r.Metric, r.Old, r.New, 100*r.Delta)
}

// CompareResult is the outcome of comparing two artifacts.
type CompareResult struct {
	Regressions []Regression `json:"regressions"`
	// Improvements counts cells that got better beyond the threshold
	// (informational).
	Improvements int `json:"improvements"`
	// Compared is the number of cells present in both artifacts.
	Compared int `json:"compared"`
	// NewCells lists keys present only in the new artifact (fine: sweeps
	// grow); MissingCells lists keys that vanished (flagged as regressions).
	NewCells     []string `json:"newCells,omitempty"`
	MissingCells []string `json:"missingCells,omitempty"`
	// SchemaOld / SchemaNew record both artifacts' schema identifiers;
	// SchemaMismatch is set when they differ, and fails the comparison — a
	// version skew silently compared as equal hides format changes.
	SchemaOld      string `json:"schemaOld,omitempty"`
	SchemaNew      string `json:"schemaNew,omitempty"`
	SchemaMismatch bool   `json:"schemaMismatch,omitempty"`
	// MetricGaps lists metrics recorded in only one of the two artifacts
	// (e.g. a baseline captured without telemetry has no attribution). Gaps
	// are reported, never silently skipped, but do not fail the comparison.
	MetricGaps []string `json:"metricGaps,omitempty"`
}

// Ok reports whether the comparison found no regressions and no schema
// mismatch.
func (c CompareResult) Ok() bool { return len(c.Regressions) == 0 && !c.SchemaMismatch }

// abortRateFloor is the absolute aborts-per-commit slack below which
// abort-rate growth is ignored: going from 0.00 to 0.03 aborts/commit is
// noise, not a pathology.
const abortRateFloor = 0.05

// Compare flags every cell of new that is worse than its counterpart in
// old by more than tol (a fraction: 0.10 means 10%). A cell present in old
// but missing from new is itself a regression — a shrunk sweep must be
// explicit, not silent.
func Compare(old, new *Artifact, tol float64) CompareResult {
	var res CompareResult
	res.SchemaOld, res.SchemaNew = old.Schema, new.Schema
	res.SchemaMismatch = old.Schema != new.Schema
	oldByKey := map[string]Cell{}
	for _, c := range old.Cells {
		oldByKey[c.Key()] = c
	}
	newByKey := map[string]Cell{}
	for _, c := range new.Cells {
		newByKey[c.Key()] = c
		if _, ok := oldByKey[c.Key()]; !ok {
			res.NewCells = append(res.NewCells, c.Key())
		}
	}
	sort.Strings(res.NewCells)

	keys := make([]string, 0, len(oldByKey))
	for k := range oldByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		oc := oldByKey[k]
		nc, ok := newByKey[k]
		if !ok {
			res.MissingCells = append(res.MissingCells, k)
			res.Regressions = append(res.Regressions, Regression{
				Key: k, Metric: "missing-cell", Old: 1, New: 0, Delta: 1,
			})
			continue
		}
		res.Compared++
		// Metrics recorded on only one side are gaps, reported by name —
		// a comparison that silently skips them reads as "compared clean"
		// when half the data was never looked at.
		if gap := metricGaps(k, oc, nc); len(gap) > 0 {
			res.MetricGaps = append(res.MetricGaps, gap...)
		}
		if oc.Throughput > 0 && nc.Throughput > 0 {
			delta := (oc.Throughput - nc.Throughput) / oc.Throughput
			if delta > tol {
				res.Regressions = append(res.Regressions, Regression{
					Key: k, Metric: "throughput", Old: oc.Throughput, New: nc.Throughput, Delta: delta,
				})
			} else if -delta > tol {
				res.Improvements++
			}
		}
		if nc.AbortRate > oc.AbortRate+abortRateFloor {
			base := oc.AbortRate
			if base < abortRateFloor {
				base = abortRateFloor
			}
			delta := (nc.AbortRate - oc.AbortRate) / base
			if delta > tol {
				res.Regressions = append(res.Regressions, Regression{
					Key: k, Metric: "abort-rate", Old: oc.AbortRate, New: nc.AbortRate, Delta: delta,
				})
			}
		}
	}
	return res
}

// metricGaps names the optional metrics of one cell pair recorded on only
// one side.
func metricGaps(key string, oc, nc Cell) []string {
	var gaps []string
	side := func(inOld bool) string {
		if inOld {
			return "only in old artifact"
		}
		return "only in new artifact"
	}
	if (oc.Throughput > 0) != (nc.Throughput > 0) {
		gaps = append(gaps, fmt.Sprintf("%s: throughput %s", key, side(oc.Throughput > 0)))
	}
	if (oc.Attribution != nil) != (nc.Attribution != nil) {
		gaps = append(gaps, fmt.Sprintf("%s: attribution %s", key, side(oc.Attribution != nil)))
	}
	if (len(oc.Pathologies) > 0) != (len(nc.Pathologies) > 0) {
		gaps = append(gaps, fmt.Sprintf("%s: pathologies %s", key, side(len(oc.Pathologies) > 0)))
	}
	if (oc.CriticalPath != nil) != (nc.CriticalPath != nil) {
		gaps = append(gaps, fmt.Sprintf("%s: criticalPath %s", key, side(oc.CriticalPath != nil)))
	}
	return gaps
}

// Print writes the comparison outcome for humans.
func (c CompareResult) Print(w io.Writer) {
	if c.SchemaMismatch {
		fmt.Fprintf(w, "SCHEMA MISMATCH: old %q vs new %q — artifacts are not comparable\n",
			c.SchemaOld, c.SchemaNew)
	}
	fmt.Fprintf(w, "compared %d cells", c.Compared)
	if len(c.NewCells) > 0 {
		fmt.Fprintf(w, ", %d new", len(c.NewCells))
	}
	if c.Improvements > 0 {
		fmt.Fprintf(w, ", %d improved", c.Improvements)
	}
	fmt.Fprintln(w)
	if len(c.MetricGaps) > 0 {
		fmt.Fprintf(w, "%d metric gap(s) — recorded in only one artifact:\n", len(c.MetricGaps))
		for _, g := range c.MetricGaps {
			fmt.Fprintf(w, "  %s\n", g)
		}
	}
	if len(c.Regressions) == 0 {
		fmt.Fprintln(w, "no regressions")
		return
	}
	fmt.Fprintf(w, "%d regression(s):\n", len(c.Regressions))
	for _, r := range c.Regressions {
		fmt.Fprintf(w, "  %s\n", r)
	}
}
