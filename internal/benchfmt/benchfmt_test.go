package benchfmt

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleArtifact() *Artifact {
	a := New("test", 500)
	a.Add(Cell{
		Figure: "fig4", System: "FlexTM(Lazy)", Workload: "RBTree", Threads: 8,
		Commits: 4000, Aborts: 400, Cycles: 1_000_000,
		Throughput: 4.0, AbortRate: 0.1,
		Pathologies: map[string]uint64{"abort-cycle": 2},
	})
	a.Add(Cell{
		Figure: "fig4", System: "FlexTM(Eager)", Workload: "RBTree", Threads: 8,
		Commits: 3500, Aborts: 700, Cycles: 1_000_000,
		Throughput: 3.5, AbortRate: 0.2,
	})
	a.Add(Cell{
		Figure: "fig5", System: "CGL", Workload: "LFUCache", Threads: 4,
		Commits: 2000, Aborts: 0, Cycles: 800_000,
		Throughput: 2.5, AbortRate: 0,
	})
	return a
}

func TestRoundTrip(t *testing.T) {
	a := sampleArtifact()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	b, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if b.Schema != Schema || b.Label != "test" || b.Ops != 500 {
		t.Fatalf("header mismatch: %+v", b)
	}
	if !reflect.DeepEqual(a.Cells, b.Cells) {
		t.Fatalf("cells mismatch:\nwrote %+v\nread  %+v", a.Cells, b.Cells)
	}
}

func TestWriteIsByteStable(t *testing.T) {
	// Two artifacts with the same cells in different insertion order must
	// serialize identically (Write sorts by key).
	a := sampleArtifact()
	b := New("test", 500)
	for i := len(a.Cells) - 1; i >= 0; i-- {
		b.Add(a.Cells[i])
	}
	var wa, wb bytes.Buffer
	if err := a.Write(&wa); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(&wb); err != nil {
		t.Fatal(err)
	}
	if wa.String() != wb.String() {
		t.Fatalf("serialization depends on insertion order:\n%s\nvs\n%s", wa.String(), wb.String())
	}
}

func TestReadRejectsUnknownSchema(t *testing.T) {
	// Any flextm-bench/ version parses (Compare flags the skew); foreign
	// formats and garbage do not.
	if _, err := Read(strings.NewReader(`{"schema":"flextm-bench/v999","cells":[]}`)); err != nil {
		t.Fatalf("newer flextm-bench version rejected at read time: %v", err)
	}
	if _, err := Read(strings.NewReader(`{"schema":"go-bench/v1","cells":[]}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSelfCompareIsClean(t *testing.T) {
	a := sampleArtifact()
	res := Compare(a, a, 0.10)
	if !res.Ok() {
		t.Fatalf("self-compare found regressions: %+v", res.Regressions)
	}
	if res.Compared != 3 || res.Improvements != 0 || len(res.NewCells) != 0 || len(res.MissingCells) != 0 {
		t.Fatalf("self-compare result: %+v", res)
	}
}

func TestCompareFlagsThroughputDrop(t *testing.T) {
	old := sampleArtifact()
	degraded := sampleArtifact()
	degraded.Cells[0].Throughput *= 0.5 // 50% drop on the first cell
	res := Compare(old, degraded, 0.10)
	if res.Ok() || len(res.Regressions) != 1 {
		t.Fatalf("degraded artifact not flagged: %+v", res)
	}
	r := res.Regressions[0]
	if r.Metric != "throughput" || r.Delta < 0.49 || r.Delta > 0.51 {
		t.Fatalf("regression = %+v, want ~50%% throughput drop", r)
	}
	if !strings.Contains(r.Key, old.Cells[0].Key()) {
		t.Fatalf("regression key %q does not identify cell %q", r.Key, old.Cells[0].Key())
	}
	// A drop within tolerance passes.
	mild := sampleArtifact()
	mild.Cells[0].Throughput *= 0.95
	if res := Compare(old, mild, 0.10); !res.Ok() {
		t.Fatalf("5%% drop flagged at 10%% tolerance: %+v", res.Regressions)
	}
}

func TestCompareFlagsAbortRateGrowth(t *testing.T) {
	old := sampleArtifact()
	worse := sampleArtifact()
	worse.Cells[1].AbortRate = 0.5 // 0.2 -> 0.5 aborts per commit
	res := Compare(old, worse, 0.10)
	if res.Ok() {
		t.Fatal("abort-rate growth not flagged")
	}
	if res.Regressions[0].Metric != "abort-rate" {
		t.Fatalf("regression = %+v, want abort-rate", res.Regressions[0])
	}
	// Tiny absolute growth from zero stays under the floor.
	noise := sampleArtifact()
	noise.Cells[2].AbortRate = 0.03
	if res := Compare(old, noise, 0.10); !res.Ok() {
		t.Fatalf("sub-floor abort-rate growth flagged: %+v", res.Regressions)
	}
}

func TestCompareMissingCellIsRegression(t *testing.T) {
	old := sampleArtifact()
	shrunk := sampleArtifact()
	shrunk.Cells = shrunk.Cells[:2]
	res := Compare(old, shrunk, 0.10)
	if res.Ok() {
		t.Fatal("vanished cell not flagged")
	}
	if len(res.MissingCells) != 1 || res.Regressions[len(res.Regressions)-1].Metric != "missing-cell" {
		t.Fatalf("missing cell result: %+v", res)
	}
	// New cells are informational, not regressions.
	grown := sampleArtifact()
	grown.Add(Cell{Figure: "fig9", System: "TL2", Workload: "RBTree", Threads: 2, Throughput: 1})
	res = Compare(old, grown, 0.10)
	if !res.Ok() || len(res.NewCells) != 1 {
		t.Fatalf("grown sweep result: %+v", res)
	}
}

func TestCompareCountsImprovements(t *testing.T) {
	old := sampleArtifact()
	better := sampleArtifact()
	better.Cells[0].Throughput *= 2
	res := Compare(old, better, 0.10)
	if !res.Ok() || res.Improvements != 1 {
		t.Fatalf("improvement not counted: %+v", res)
	}
}

func TestComparePrint(t *testing.T) {
	old := sampleArtifact()
	degraded := sampleArtifact()
	degraded.Cells[0].Throughput *= 0.5
	var buf bytes.Buffer
	Compare(old, degraded, 0.10).Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "1 regression") || !strings.Contains(out, "throughput") {
		t.Fatalf("Print output:\n%s", out)
	}
	buf.Reset()
	Compare(old, old, 0.10).Print(&buf)
	if !strings.Contains(buf.String(), "no regressions") {
		t.Fatalf("clean Print output:\n%s", buf.String())
	}
}

func TestCellKey(t *testing.T) {
	c := Cell{Figure: "fig4", System: "FlexTM(Lazy)", Workload: "RBTree", Threads: 8}
	if got := c.Key(); got != "fig4/FlexTM(Lazy)/RBTree@8" {
		t.Fatalf("Key = %q", got)
	}
}
