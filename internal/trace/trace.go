// Package trace records transaction-level events from a TM run and
// summarizes them: commit/abort latencies, retry distributions, and
// conflict outcomes. The harness and cmd/flextm use it for post-mortem
// analysis of policy behavior (e.g. where eager mode burns its time).
package trace

import (
	"fmt"
	"io"
	"sort"

	"flextm/internal/sim"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	Begin Kind = iota
	Commit
	Abort
	ConflictWait
	ConflictAbortEnemy
	ConflictAbortSelf
)

// String returns the event name.
func (k Kind) String() string {
	switch k {
	case Begin:
		return "begin"
	case Commit:
		return "commit"
	case Abort:
		return "abort"
	case ConflictWait:
		return "wait"
	case ConflictAbortEnemy:
		return "abort-enemy"
	case ConflictAbortSelf:
		return "abort-self"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	At    sim.Time
	Core  int
	Kind  Kind
	Enemy int // conflict events: the other processor (-1 otherwise)
}

// Recorder accumulates events. It is used from simulated threads, which the
// engine runs one at a time, so no locking is needed.
type Recorder struct {
	events  []Event
	dropped int
	// Cap bounds memory for long runs; 0 means unlimited.
	Cap int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add appends an event. Once Cap is reached further events are counted as
// dropped (see Dropped) rather than recorded.
func (r *Recorder) Add(e Event) {
	if r.Cap > 0 && len(r.events) >= r.Cap {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Dropped returns the number of events discarded after Cap was reached. A
// non-zero value means summaries and timelines are truncated.
func (r *Recorder) Dropped() int { return r.dropped }

// Events returns the recorded events in order.
func (r *Recorder) Events() []Event { return r.events }

// Summary aggregates a run's transactional behavior.
type Summary struct {
	Commits, Aborts              int
	Waits, EnemyKills, SelfKills int
	// AttemptCycles are the durations of every attempt (begin to
	// commit/abort), sorted ascending.
	AttemptCycles []sim.Time
	// RetriesPerCommit[n] counts transactions that needed n aborts before
	// committing.
	RetriesPerCommit map[int]int
	// Orphans counts Commit/Abort events that arrived with no open
	// transaction on their core (plus any unknown kinds). They indicate a
	// truncated or malformed stream and are excluded from the commit/abort
	// counts and latency statistics rather than silently folded in.
	Orphans map[Kind]int
	// OpenAtEnd counts cores whose last transaction never resolved (the
	// stream ended between Begin and Commit/Abort).
	OpenAtEnd int
	// Dropped is the recorder's post-Cap discard count at summary time.
	Dropped int
}

// orphan records an out-of-protocol event.
func (s *Summary) orphan(k Kind) {
	if s.Orphans == nil {
		s.Orphans = map[Kind]int{}
	}
	s.Orphans[k]++
}

// Summarize reduces the event stream per core into a Summary.
func (r *Recorder) Summarize() Summary {
	s := Summary{RetriesPerCommit: map[int]int{}, Dropped: r.dropped}
	type open struct {
		start   sim.Time
		retries int
	}
	cur := map[int]*open{}
	for _, e := range r.events {
		switch e.Kind {
		case Begin:
			if o := cur[e.Core]; o != nil {
				o.start = e.At // retry of the same transaction
			} else {
				cur[e.Core] = &open{start: e.At}
			}
		case Commit:
			o := cur[e.Core]
			if o == nil {
				s.orphan(Commit)
				continue
			}
			s.Commits++
			s.AttemptCycles = append(s.AttemptCycles, e.At-o.start)
			s.RetriesPerCommit[o.retries]++
			delete(cur, e.Core)
		case Abort:
			o := cur[e.Core]
			if o == nil {
				s.orphan(Abort)
				continue
			}
			s.Aborts++
			s.AttemptCycles = append(s.AttemptCycles, e.At-o.start)
			o.retries++
		case ConflictWait:
			s.Waits++
		case ConflictAbortEnemy:
			s.EnemyKills++
		case ConflictAbortSelf:
			s.SelfKills++
		default:
			s.orphan(e.Kind)
		}
	}
	// A committed transaction always deletes its entry, so whatever remains
	// is unfinished: mid-attempt, or aborted and awaiting a retry that the
	// stream never saw.
	s.OpenAtEnd = len(cur)
	sort.Slice(s.AttemptCycles, func(i, j int) bool { return s.AttemptCycles[i] < s.AttemptCycles[j] })
	return s
}

// Percentile returns the p-th percentile attempt duration (p in [0,100]).
func (s Summary) Percentile(p float64) sim.Time {
	if len(s.AttemptCycles) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(s.AttemptCycles)-1))
	return s.AttemptCycles[idx]
}

// Print writes a human-readable summary.
func (s Summary) Print(w io.Writer) {
	fmt.Fprintf(w, "commits %d, aborts %d (%.2f/commit)\n",
		s.Commits, s.Aborts, float64(s.Aborts)/float64(max(s.Commits, 1)))
	if len(s.Orphans) > 0 {
		var kinds []int
		for k := range s.Orphans {
			kinds = append(kinds, int(k))
		}
		sort.Ints(kinds)
		fmt.Fprintf(w, "WARNING: orphan events (no open transaction):")
		for _, k := range kinds {
			fmt.Fprintf(w, " %s=%d", Kind(k), s.Orphans[Kind(k)])
		}
		fmt.Fprintln(w)
	}
	if s.OpenAtEnd > 0 {
		fmt.Fprintf(w, "WARNING: %d transactions still open at end of trace\n", s.OpenAtEnd)
	}
	if s.Dropped > 0 {
		fmt.Fprintf(w, "WARNING: %d events dropped at recorder cap; stats are truncated\n", s.Dropped)
	}
	fmt.Fprintf(w, "conflict handling: %d waits, %d enemy aborts, %d self aborts\n",
		s.Waits, s.EnemyKills, s.SelfKills)
	if len(s.AttemptCycles) > 0 {
		fmt.Fprintf(w, "attempt cycles: p50=%d p90=%d p99=%d max=%d\n",
			s.Percentile(50), s.Percentile(90), s.Percentile(99),
			s.AttemptCycles[len(s.AttemptCycles)-1])
	}
	var retries []int
	for n := range s.RetriesPerCommit {
		retries = append(retries, n)
	}
	sort.Ints(retries)
	for _, n := range retries {
		fmt.Fprintf(w, "  %d retries: %d txns\n", n, s.RetriesPerCommit[n])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
