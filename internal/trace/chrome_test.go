package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// chromeDoc mirrors the trace_event JSON for decoding in tests.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"`
		Dur   float64        `json:"dur"`
		TID   int            `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func exportChrome(t *testing.T, events []Event) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace_event JSON: %v\n%s", err, buf.String())
	}
	return doc
}

// TestChromeInterleavedRetries runs a two-core interleaved retry scenario
// through the exporter: core 0 aborts once (after losing to core 1) and
// retries to completion while core 1 commits mid-way through core 0's
// attempts. A third core contributes an orphan commit, which must surface
// as a visible instant rather than vanish.
func TestChromeInterleavedRetries(t *testing.T) {
	events := []Event{
		{At: 0, Core: 0, Kind: Begin},
		{At: 5, Core: 1, Kind: Begin},
		{At: 10, Core: 0, Kind: ConflictWait, Enemy: 1},
		{At: 30, Core: 0, Kind: Abort},
		{At: 40, Core: 1, Kind: Commit},
		{At: 50, Core: 0, Kind: Begin},
		{At: 90, Core: 0, Kind: Commit},
		{At: 95, Core: 2, Kind: Commit}, // orphan: no Begin on core 2
	}
	doc := exportChrome(t, events)

	type span struct {
		tid      int
		ts, dur  float64
		expected string
	}
	wantSpans := []span{
		{0, 0, 30, "abort"},
		{0, 50, 40, "commit"},
		{1, 5, 35, "commit"},
	}
	for _, w := range wantSpans {
		found := false
		for _, e := range doc.TraceEvents {
			if e.Phase == "X" && e.TID == w.tid && e.TS == w.ts && e.Dur == w.dur && e.Name == w.expected {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %q span tid=%d ts=%v dur=%v in %+v", w.expected, w.tid, w.ts, w.dur, doc.TraceEvents)
		}
	}

	var sawWait, sawOrphan bool
	names := map[int]string{}
	for _, e := range doc.TraceEvents {
		switch {
		case e.Phase == "i" && e.Name == "wait" && e.TID == 0:
			sawWait = true
			if e.Args["enemy"] != float64(1) {
				t.Errorf("wait instant enemy = %v, want 1", e.Args["enemy"])
			}
		case e.Phase == "i" && e.Name == "orphan-commit" && e.TID == 2:
			sawOrphan = true
		case e.Phase == "M" && e.Name == "thread_name":
			names[e.TID], _ = e.Args["name"].(string)
		}
	}
	if !sawWait {
		t.Error("conflict wait instant missing")
	}
	if !sawOrphan {
		t.Error("orphan commit not surfaced in timeline")
	}
	for _, tid := range []int{0, 1, 2} {
		if names[tid] == "" {
			t.Errorf("no thread_name metadata for core %d", tid)
		}
	}
}

func TestChromeUnfinishedAttemptVisible(t *testing.T) {
	events := []Event{
		{At: 0, Core: 0, Kind: Begin},
		{At: 100, Core: 1, Kind: Begin},
		{At: 200, Core: 1, Kind: Commit},
		// Core 0 never resolves: the stream was truncated mid-attempt.
	}
	doc := exportChrome(t, events)
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" && e.TID == 0 && e.Name == "unfinished" && e.TS == 0 && e.Dur == 200 {
			return
		}
	}
	t.Fatalf("unfinished attempt not drawn: %+v", doc.TraceEvents)
}

// TestChromeKillFlowEvents: an abort-enemy decision must emit a flow pair —
// an "s" event on the killer's row at decision time and a bp="e" "f" event
// on the victim's row at its resulting Abort, sharing one id — so the
// viewer draws the kill as an arrow. A kill whose victim never aborts (the
// CAS lost; the victim committed) must emit no dangling flow start.
func TestChromeKillFlowEvents(t *testing.T) {
	events := []Event{
		{At: 0, Core: 0, Kind: Begin},
		{At: 5, Core: 1, Kind: Begin},
		{At: 20, Core: 1, Kind: ConflictAbortEnemy, Enemy: 0},
		{At: 25, Core: 0, Kind: Abort},
		{At: 30, Core: 0, Kind: Begin},
		{At: 40, Core: 1, Kind: Commit},
		{At: 50, Core: 0, Kind: ConflictAbortEnemy, Enemy: 1}, // victim already committed
		{At: 60, Core: 0, Kind: Commit},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []ChromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace_event JSON: %v\n%s", err, buf.String())
	}

	var starts, finishes []ChromeEvent
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "s":
			starts = append(starts, e)
		case "f":
			finishes = append(finishes, e)
		}
	}
	if len(starts) != 1 || len(finishes) != 1 {
		t.Fatalf("flow events = %d starts, %d finishes, want 1 each:\n%s", len(starts), len(finishes), buf.String())
	}
	s, f := starts[0], finishes[0]
	if s.Name != "kill" || s.Cat != "abort-lineage" || s.TID != 1 || s.TS != 20 {
		t.Errorf("flow start = %+v, want kill/abort-lineage on tid 1 at ts 20", s)
	}
	if f.TID != 0 || f.TS != 25 || f.BP != "e" {
		t.Errorf("flow finish = %+v, want tid 0, ts 25, bp \"e\"", f)
	}
	if s.ID == 0 || s.ID != f.ID {
		t.Errorf("flow ids %d / %d, want equal and non-zero", s.ID, f.ID)
	}
}

// TestChromeEventSchemaRoundTrip: the document must survive an
// encode -> decode -> encode cycle through the exported ChromeEvent type
// byte-identically, pinning the JSON schema other renderers (internal/
// causal) emit into.
func TestChromeEventSchemaRoundTrip(t *testing.T) {
	events := []Event{
		{At: 0, Core: 0, Kind: Begin},
		{At: 5, Core: 1, Kind: Begin},
		{At: 20, Core: 1, Kind: ConflictAbortEnemy, Enemy: 0},
		{At: 25, Core: 0, Kind: Abort},
		{At: 40, Core: 1, Kind: Commit},
		{At: 55, Core: 0, Kind: Commit},
	}
	var first bytes.Buffer
	if err := WriteChrome(&first, events); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []ChromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(first.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	var second bytes.Buffer
	if err := EncodeChrome(&second, doc.TraceEvents); err != nil {
		t.Fatalf("EncodeChrome: %v", err)
	}
	if first.String() != second.String() {
		t.Fatalf("round trip changed the document:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

// TestChromeDurationEventsRoundTrip: duration-bearing ("X" with dur) events
// — the shape internal/causal emits for CM stalls and retry back-off folded
// out of flight Rec.Dur — must survive encode -> decode -> encode with the
// dur field intact. Zero-dur events must stay dur-less (omitempty), so
// instants don't grow a spurious dur: 0 on re-encode.
func TestChromeDurationEventsRoundTrip(t *testing.T) {
	events := []ChromeEvent{
		{Name: "cm-stall", Cat: "cm", Phase: "X", TS: 24, Dur: 30, PID: 1, TID: 0},
		{Name: "backoff", Cat: "cm", Phase: "X", TS: 40, Dur: 35, PID: 1, TID: 1},
		{Name: "decision", Cat: "cm", Phase: "i", TS: 25, PID: 1, TID: 0, Scope: "t"},
	}
	var first bytes.Buffer
	if err := EncodeChrome(&first, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []ChromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(first.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	durs := map[string]float64{}
	for _, e := range doc.TraceEvents {
		durs[e.Name] = e.Dur
	}
	if durs["cm-stall"] != 30 || durs["backoff"] != 35 || durs["decision"] != 0 {
		t.Fatalf("durations lost in transit: %+v", durs)
	}
	if strings.Contains(first.String(), `"name":"decision","cat":"cm","ph":"i","ts":25,"dur"`) {
		t.Fatal("zero-dur instant grew a dur field")
	}
	var second bytes.Buffer
	if err := EncodeChrome(&second, doc.TraceEvents); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("duration events not byte-stable:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

func TestChromeEmpty(t *testing.T) {
	doc := exportChrome(t, nil)
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty stream produced events: %+v", doc.TraceEvents)
	}
}
