package trace

import (
	"bytes"
	"strings"
	"testing"
)

// truncatedStream is a stream whose prefix was lost: commits and aborts
// arrive for cores that never (visibly) began, alongside one well-formed
// transaction and one attempt that never resolves.
func truncatedStream() []Event {
	return []Event{
		{At: 10, Core: 1, Kind: Commit, Enemy: -1}, // orphan: Begin was truncated away
		{At: 12, Core: 2, Kind: Abort, Enemy: -1},  // orphan
		{At: 20, Core: 0, Kind: Begin, Enemy: -1},
		{At: 25, Core: 0, Kind: ConflictAbortEnemy, Enemy: 3},
		{At: 28, Core: 3, Kind: Begin, Enemy: -1}, // never resolves
		{At: 30, Core: 0, Kind: Commit, Enemy: -1},
	}
}

func TestSummarizeReportsOrphansOnTruncatedStream(t *testing.T) {
	rec := NewRecorder()
	for _, e := range truncatedStream() {
		rec.Add(e)
	}
	s := rec.Summarize()
	if s.Commits != 1 || s.Aborts != 0 {
		t.Fatalf("commits/aborts = %d/%d, want 1/0 (orphans must not count)", s.Commits, s.Aborts)
	}
	if got := s.Orphans[Commit]; got != 1 {
		t.Fatalf("orphan commits = %d, want 1", got)
	}
	if got := s.Orphans[Abort]; got != 1 {
		t.Fatalf("orphan aborts = %d, want 1", got)
	}
	if s.OpenAtEnd != 1 {
		t.Fatalf("OpenAtEnd = %d, want 1 (core 3's unresolved Begin)", s.OpenAtEnd)
	}
	if len(s.AttemptCycles) != 1 || s.AttemptCycles[0] != 10 {
		t.Fatalf("AttemptCycles = %v, want [10]", s.AttemptCycles)
	}

	var buf bytes.Buffer
	s.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "orphan") {
		t.Fatalf("Print does not warn about orphans:\n%s", out)
	}
	if !strings.Contains(out, "open at end") {
		t.Fatalf("Print does not warn about unresolved transactions:\n%s", out)
	}
}

func TestWriteChromeTruncatedStreamShowsOrphans(t *testing.T) {
	doc := exportChrome(t, truncatedStream())
	count := func(name string) int {
		n := 0
		for _, e := range doc.TraceEvents {
			if e.Name == name {
				n++
			}
		}
		return n
	}
	if got := count("orphan-commit"); got != 1 {
		t.Fatalf("orphan-commit markers = %d, want 1", got)
	}
	if got := count("orphan-abort"); got != 1 {
		t.Fatalf("orphan-abort markers = %d, want 1", got)
	}
	// Core 3's unterminated attempt is drawn to the last timestamp.
	if got := count("unfinished"); got != 1 {
		t.Fatalf("unfinished spans = %d, want 1", got)
	}
	// And the well-formed transaction still renders normally.
	if got := count("commit"); got != 1 {
		t.Fatalf("commit spans = %d, want 1", got)
	}
}
