package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummarizeBasicLifecycle(t *testing.T) {
	r := NewRecorder()
	// Core 0: begin -> abort -> begin(retry) -> commit.
	r.Add(Event{At: 0, Core: 0, Kind: Begin})
	r.Add(Event{At: 100, Core: 0, Kind: Abort})
	r.Add(Event{At: 150, Core: 0, Kind: Begin})
	r.Add(Event{At: 400, Core: 0, Kind: Commit})
	// Core 1: clean commit.
	r.Add(Event{At: 10, Core: 1, Kind: Begin})
	r.Add(Event{At: 60, Core: 1, Kind: Commit})

	s := r.Summarize()
	if s.Commits != 2 || s.Aborts != 1 {
		t.Fatalf("commits=%d aborts=%d", s.Commits, s.Aborts)
	}
	if s.RetriesPerCommit[1] != 1 || s.RetriesPerCommit[0] != 1 {
		t.Fatalf("retries histogram = %v", s.RetriesPerCommit)
	}
	if len(s.AttemptCycles) != 3 {
		t.Fatalf("attempt samples = %d, want 3", len(s.AttemptCycles))
	}
	if s.AttemptCycles[0] != 50 || s.AttemptCycles[2] != 250 {
		t.Fatalf("attempt cycles = %v", s.AttemptCycles)
	}
}

func TestConflictCounters(t *testing.T) {
	r := NewRecorder()
	r.Add(Event{Kind: ConflictWait, Enemy: 2})
	r.Add(Event{Kind: ConflictWait, Enemy: 2})
	r.Add(Event{Kind: ConflictAbortEnemy, Enemy: 2})
	r.Add(Event{Kind: ConflictAbortSelf, Enemy: 3})
	s := r.Summarize()
	if s.Waits != 2 || s.EnemyKills != 1 || s.SelfKills != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPercentiles(t *testing.T) {
	s := Summary{AttemptCycles: []uint64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}}
	if p := s.Percentile(0); p != 10 {
		t.Fatalf("p0 = %d", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("p100 = %d", p)
	}
	if p := s.Percentile(50); p < 40 || p > 60 {
		t.Fatalf("p50 = %d", p)
	}
	if (Summary{}).Percentile(50) != 0 {
		t.Fatal("empty summary percentile should be 0")
	}
}

func TestCapBoundsMemory(t *testing.T) {
	r := NewRecorder()
	r.Cap = 5
	for i := 0; i < 100; i++ {
		r.Add(Event{At: uint64(i)})
	}
	if len(r.Events()) != 5 {
		t.Fatalf("events = %d, want 5", len(r.Events()))
	}
}

func TestPrintHumanReadable(t *testing.T) {
	r := NewRecorder()
	r.Add(Event{At: 0, Core: 0, Kind: Begin})
	r.Add(Event{At: 80, Core: 0, Kind: Commit})
	var buf bytes.Buffer
	r.Summarize().Print(&buf)
	out := buf.String()
	for _, want := range []string{"commits 1", "attempt cycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Begin; k <= ConflictAbortSelf; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestOrphanEventsReported(t *testing.T) {
	r := NewRecorder()
	// Commit and abort with no open transaction: a truncated stream.
	r.Add(Event{At: 10, Core: 0, Kind: Commit})
	r.Add(Event{At: 20, Core: 1, Kind: Abort})
	// A real transaction on core 2, untouched by the orphans.
	r.Add(Event{At: 30, Core: 2, Kind: Begin})
	r.Add(Event{At: 90, Core: 2, Kind: Commit})
	s := r.Summarize()
	if s.Commits != 1 || s.Aborts != 0 {
		t.Fatalf("commits=%d aborts=%d, orphans must not count", s.Commits, s.Aborts)
	}
	if s.Orphans[Commit] != 1 || s.Orphans[Abort] != 1 {
		t.Fatalf("orphans = %v", s.Orphans)
	}
	if len(s.AttemptCycles) != 1 || s.AttemptCycles[0] != 60 {
		t.Fatalf("attempt cycles = %v, orphan must not fold into latency", s.AttemptCycles)
	}
	var buf bytes.Buffer
	s.Print(&buf)
	if !strings.Contains(buf.String(), "orphan events") {
		t.Fatalf("orphans not reported:\n%s", buf.String())
	}
}

func TestOpenAtEndReported(t *testing.T) {
	r := NewRecorder()
	r.Add(Event{At: 0, Core: 0, Kind: Begin})
	r.Add(Event{At: 5, Core: 1, Kind: Begin})
	r.Add(Event{At: 50, Core: 1, Kind: Commit})
	s := r.Summarize()
	if s.OpenAtEnd != 1 {
		t.Fatalf("openAtEnd = %d, want 1", s.OpenAtEnd)
	}
	var buf bytes.Buffer
	s.Print(&buf)
	if !strings.Contains(buf.String(), "still open") {
		t.Fatalf("open transactions not reported:\n%s", buf.String())
	}
}

func TestDroppedCounted(t *testing.T) {
	r := NewRecorder()
	r.Cap = 3
	for i := 0; i < 10; i++ {
		r.Add(Event{At: uint64(i), Kind: Begin})
	}
	if r.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", r.Dropped())
	}
	s := r.Summarize()
	if s.Dropped != 7 {
		t.Fatalf("summary dropped = %d", s.Dropped)
	}
	var buf bytes.Buffer
	s.Print(&buf)
	if !strings.Contains(buf.String(), "dropped") {
		t.Fatalf("drops not reported:\n%s", buf.String())
	}
}
