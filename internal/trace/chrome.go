package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"flextm/internal/sim"
)

// chromeEvent is one entry in the Chrome trace_event JSON format, loadable
// in chrome://tracing and Perfetto. Simulated cycles are written as
// microseconds (1 cycle == 1 µs), so the viewers' time axis reads directly
// in cycles.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the event stream as a Chrome trace_event JSON
// document: one timeline row per core, a complete ("X") span per
// transaction attempt named by its outcome, and instant ("i") markers for
// conflict-management decisions. Orphan events — a Commit or Abort with no
// open attempt on its core — are emitted as visible "orphan-*" instants
// rather than discarded, so truncated or malformed streams are evident in
// the viewer.
func WriteChrome(w io.Writer, events []Event) error {
	const pid = 1
	var out []chromeEvent

	cores := map[int]bool{}
	type open struct {
		start sim.Time
	}
	cur := map[int]*open{}
	span := func(core int, start, end sim.Time, name string) {
		out = append(out, chromeEvent{
			Name: name, Cat: "txn", Phase: "X",
			TS: float64(start), Dur: float64(end - start),
			PID: pid, TID: core,
		})
	}
	instant := func(core int, at sim.Time, name string, args map[string]any) {
		out = append(out, chromeEvent{
			Name: name, Cat: "cm", Phase: "i",
			TS: float64(at), PID: pid, TID: core,
			Scope: "t", Args: args,
		})
	}

	var last sim.Time
	for _, e := range events {
		cores[e.Core] = true
		if e.At > last {
			last = e.At
		}
		switch e.Kind {
		case Begin:
			if o := cur[e.Core]; o != nil {
				o.start = e.At
			} else {
				cur[e.Core] = &open{start: e.At}
			}
		case Commit:
			if o := cur[e.Core]; o != nil {
				span(e.Core, o.start, e.At, "commit")
				delete(cur, e.Core)
			} else {
				instant(e.Core, e.At, "orphan-commit", nil)
			}
		case Abort:
			if o := cur[e.Core]; o != nil {
				span(e.Core, o.start, e.At, "abort")
				// Keep the entry: a following Begin on this core is the
				// retry of the same transaction.
				o.start = e.At
			} else {
				instant(e.Core, e.At, "orphan-abort", nil)
			}
		case ConflictWait, ConflictAbortEnemy, ConflictAbortSelf:
			name := e.Kind.String()
			if cur[e.Core] == nil {
				name = "orphan-" + name
			}
			args := map[string]any{}
			if e.Enemy >= 0 {
				args["enemy"] = e.Enemy
			}
			instant(e.Core, e.At, name, args)
		default:
			instant(e.Core, e.At, "orphan-"+e.Kind.String(), nil)
		}
	}
	// Attempts still open at the end of the stream: draw them to the last
	// timestamp so they are visible (and visibly unterminated).
	for core, o := range cur {
		if last > o.start {
			span(core, o.start, last, "unfinished")
		}
	}

	// Name the rows so viewers show "core N" instead of bare tids.
	var ids []int
	for c := range cores {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	for _, c := range ids {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: c,
			Args: map[string]any{"name": fmt.Sprintf("core %d", c)},
		})
	}

	// Stable order for diffs and tests: metadata aside, sort by timestamp.
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}
