package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"flextm/internal/sim"
)

// ChromeEvent is one entry in the Chrome trace_event JSON format, loadable
// in chrome://tracing and Perfetto. Simulated cycles are written as
// microseconds (1 cycle == 1 µs), so the viewers' time axis reads directly
// in cycles. Exported so other renderers (internal/causal) can emit into
// the same document format.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    uint64         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// EncodeChrome writes events as a {"traceEvents": [...]} document in stable
// timestamp order (metadata and ties keep their insertion order).
func EncodeChrome(w io.Writer, events []ChromeEvent) error {
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteChrome renders the event stream as a Chrome trace_event JSON
// document: one timeline row per core, a complete ("X") span per
// transaction attempt named by its outcome, instant ("i") markers for
// conflict-management decisions, and flow ("s"/"f") arrows from each
// abort-enemy decision to the victim's resulting abort, so kill lineage is
// drawn as arrows between the rows instead of disconnected instants.
// Orphan events — a Commit or Abort with no open attempt on its core — are
// emitted as visible "orphan-*" instants rather than discarded, so
// truncated or malformed streams are evident in the viewer.
func WriteChrome(w io.Writer, events []Event) error {
	const pid = 1
	var out []ChromeEvent

	// Victim abort times, for pairing kill decisions with the abort they
	// caused: the flow finishes at the victim's next Abort event.
	abortAt := map[int][]sim.Time{}
	for _, e := range events {
		if e.Kind == Abort {
			abortAt[e.Core] = append(abortAt[e.Core], e.At)
		}
	}
	nextAbort := func(core int, at sim.Time) (sim.Time, bool) {
		ts := abortAt[core]
		i := sort.Search(len(ts), func(i int) bool { return ts[i] >= at })
		if i == len(ts) {
			return 0, false
		}
		return ts[i], true
	}

	cores := map[int]bool{}
	type open struct {
		start sim.Time
	}
	cur := map[int]*open{}
	span := func(core int, start, end sim.Time, name string) {
		out = append(out, ChromeEvent{
			Name: name, Cat: "txn", Phase: "X",
			TS: float64(start), Dur: float64(end - start),
			PID: pid, TID: core,
		})
	}
	instant := func(core int, at sim.Time, name string, args map[string]any) {
		out = append(out, ChromeEvent{
			Name: name, Cat: "cm", Phase: "i",
			TS: float64(at), PID: pid, TID: core,
			Scope: "t", Args: args,
		})
	}

	var last sim.Time
	var flowID uint64
	for _, e := range events {
		cores[e.Core] = true
		if e.At > last {
			last = e.At
		}
		switch e.Kind {
		case Begin:
			if o := cur[e.Core]; o != nil {
				o.start = e.At
			} else {
				cur[e.Core] = &open{start: e.At}
			}
		case Commit:
			if o := cur[e.Core]; o != nil {
				span(e.Core, o.start, e.At, "commit")
				delete(cur, e.Core)
			} else {
				instant(e.Core, e.At, "orphan-commit", nil)
			}
		case Abort:
			if o := cur[e.Core]; o != nil {
				span(e.Core, o.start, e.At, "abort")
				// Keep the entry: a following Begin on this core is the
				// retry of the same transaction.
				o.start = e.At
			} else {
				instant(e.Core, e.At, "orphan-abort", nil)
			}
		case ConflictWait, ConflictAbortEnemy, ConflictAbortSelf:
			name := e.Kind.String()
			if cur[e.Core] == nil {
				name = "orphan-" + name
			}
			args := map[string]any{}
			if e.Enemy >= 0 {
				args["enemy"] = e.Enemy
			}
			instant(e.Core, e.At, name, args)
			if e.Kind == ConflictAbortEnemy && e.Enemy >= 0 {
				if end, ok := nextAbort(e.Enemy, e.At); ok {
					flowID++
					out = append(out, ChromeEvent{
						Name: "kill", Cat: "abort-lineage", Phase: "s",
						TS: float64(e.At), PID: pid, TID: e.Core, ID: flowID,
					})
					out = append(out, ChromeEvent{
						Name: "kill", Cat: "abort-lineage", Phase: "f", BP: "e",
						TS: float64(end), PID: pid, TID: e.Enemy, ID: flowID,
					})
				}
			}
		default:
			instant(e.Core, e.At, "orphan-"+e.Kind.String(), nil)
		}
	}
	// Attempts still open at the end of the stream: draw them to the last
	// timestamp so they are visible (and visibly unterminated).
	for core, o := range cur {
		if last > o.start {
			span(core, o.start, last, "unfinished")
		}
	}

	// Name the rows so viewers show "core N" instead of bare tids.
	var ids []int
	for c := range cores {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	for _, c := range ids {
		out = append(out, ChromeEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: c,
			Args: map[string]any{"name": fmt.Sprintf("core %d", c)},
		})
	}

	return EncodeChrome(w, out)
}
