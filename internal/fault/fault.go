// Package fault is a deterministic, seed-driven fault-injection layer for
// the FlexTM machine model. Fault classes are drawn from the paper's own
// risk surface: the mechanisms FlexTM decouples (signatures, CSTs, PDI,
// AOU, overflow tables) are each allowed to misbehave in the ways real
// hardware can — Bloom aliasing, alert loss on A-line eviction, duplicated
// alert delivery, overflow-table walk stalls, delayed coherence responses,
// and CAS-Commit interleaving races — while the architectural invariants
// (conservation, isolation, consistent reads) must continue to hold.
//
// Determinism is the core contract: every injection decision is a pure
// function of (seed, fault class, per-class decision index). Because the
// sim engine resumes exactly one thread at a time in virtual-time order,
// the sequence of decision points is itself deterministic, so the same seed
// and configuration reproduce the identical fault schedule, abort counts,
// and escalation decisions across runs.
//
// A nil *Injector is the disabled state: every method nil-checks at the
// top, mirroring internal/telemetry, so injection sites call
// unconditionally and pay one predictable branch when faults are off.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Class identifies one fault class.
type Class int

// The fault classes, each targeting one decoupled mechanism.
const (
	// SpuriousAlert delivers an AOU alert that no invalidation produced:
	// either a duplicate of the last delivered alert or an alert on an
	// unrelated line. Software must re-examine its status word and carry on.
	SpuriousAlert Class = iota
	// AlertLoss drops the alert that an A-marked line's eviction or
	// invalidation should have delivered. The runtime must recover through
	// the CAS-Commit backstop (the TSW check at commit).
	AlertLoss
	// SigFalsePos forces a responder's write signature to report membership
	// for a line it never inserted — inflated Bloom aliasing, producing
	// spurious Threatened responses, CST bits, and strong-isolation aborts.
	SigFalsePos
	// OTStall adds controller occupancy to an overflow-table walk.
	OTStall
	// CoherenceDelay delays the response of a coherence forwarding round.
	CoherenceDelay
	// CommitRace makes a CAS-Commit fail with CommitCSTFail as if a
	// conflicting response had arrived between the CST read and the commit
	// point, re-running the software commit loop.
	CommitRace
	// Preempt drives an OS preemption storm: suspend/resume of running
	// threads at pseudo-random virtual-time points. The machine model does
	// not roll this class itself; campaign drivers (harness.ChaosCampaign)
	// consult it to schedule deschedules.
	Preempt

	NumClasses
)

var classNames = [NumClasses]string{
	SpuriousAlert:  "spurious-alert",
	AlertLoss:      "alert-loss",
	SigFalsePos:    "sig-fp",
	OTStall:        "ot-stall",
	CoherenceDelay: "coherence-delay",
	CommitRace:     "commit-race",
	Preempt:        "preempt",
}

// String returns the class's stable kebab-case name.
func (c Class) String() string {
	if c >= 0 && c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass resolves a class name produced by Class.String.
func ParseClass(s string) (Class, error) {
	for c := Class(0); c < NumClasses; c++ {
		if classNames[c] == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown class %q (want one of %s)", s, strings.Join(classNames[:], ", "))
}

// Classes returns every fault class in declaration order.
func Classes() []Class {
	out := make([]Class, NumClasses)
	for c := range out {
		out[c] = Class(c)
	}
	return out
}

// Config fixes a fault campaign cell: the seed and the per-class injection
// rates (probability per decision point, in [0,1]). The zero value means
// "no faults".
type Config struct {
	Seed  uint64
	Rates [NumClasses]float64
}

// Any reports whether any class has a non-zero rate.
func (c Config) Any() bool {
	for _, r := range c.Rates {
		if r > 0 {
			return true
		}
	}
	return false
}

// WithRate returns a copy of c with class cl's rate set to r.
func (c Config) WithRate(cl Class, r float64) Config {
	c.Rates[cl] = r
	return c
}

// ParseSpec parses a command-line fault specification of the form
// "class:rate[,class:rate...]"; the pseudo-class "all" sets every class.
// Example: "sig-fp:0.1,alert-loss:0.05".
func ParseSpec(spec string, seed uint64) (Config, error) {
	cfg := Config{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, rateStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return cfg, fmt.Errorf("fault: bad spec element %q (want class:rate)", part)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate < 0 || rate > 1 {
			return cfg, fmt.Errorf("fault: bad rate %q in %q (want a probability in [0,1])", rateStr, part)
		}
		if name == "all" {
			for c := range cfg.Rates {
				cfg.Rates[c] = rate
			}
			continue
		}
		c, err := ParseClass(name)
		if err != nil {
			return cfg, err
		}
		cfg.Rates[c] = rate
	}
	return cfg, nil
}

// Injector rolls injection decisions. It is owned by the single-threaded
// simulation and needs no locking. A nil *Injector is valid and disabled.
type Injector struct {
	cfg    Config
	seq    [NumClasses]uint64 // decision index per class (drives the hash)
	amtSeq [NumClasses]uint64 // separate stream for injected magnitudes
	rolls  [NumClasses]uint64
	fired  [NumClasses]uint64
	immune map[int]bool // cores exempted (serialized fallback path)
}

// NewInjector returns an injector for cfg.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg, immune: make(map[int]bool)}
}

// Enabled reports whether class c can ever fire.
func (i *Injector) Enabled(c Class) bool {
	return i != nil && i.cfg.Rates[c] > 0
}

// mix is splitmix64: a bijective avalanche over the decision coordinates.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Fire rolls one injection decision for class c at a site affecting core
// (pass core < 0 when no single core is affected). The outcome depends only
// on the seed, the class, and the class's decision index.
func (i *Injector) Fire(core int, c Class) bool {
	if i == nil || i.cfg.Rates[c] <= 0 {
		return false
	}
	if core >= 0 && i.immune[core] {
		return false
	}
	i.rolls[c]++
	n := i.seq[c]
	i.seq[c]++
	h := mix(i.cfg.Seed ^ mix(uint64(c)+1)<<1 ^ n*0x9E3779B97F4A7C15)
	if float64(h>>11)/(1<<53) < i.cfg.Rates[c] {
		i.fired[c]++
		return true
	}
	return false
}

// Amount returns a deterministic injected magnitude in [1, max] for class c
// (extra stall cycles, hold times). max <= 1 returns 1.
func (i *Injector) Amount(c Class, max uint64) uint64 {
	if i == nil || max <= 1 {
		return 1
	}
	n := i.amtSeq[c]
	i.amtSeq[c]++
	h := mix(i.cfg.Seed ^ 0xA5A5A5A5A5A5A5A5 ^ mix(uint64(c)+17)*0x2545F4914F6CDD1D ^ n)
	return 1 + h%max
}

// SetImmune exempts (or re-exposes) core from all injection whose site names
// it. The serialized fallback path uses this: software that has escalated to
// the defensive slow path is modeled as running on de-rated, fault-free
// hardware so forward progress is guaranteed even at injection rate 1.
func (i *Injector) SetImmune(core int, on bool) {
	if i == nil {
		return
	}
	if on {
		i.immune[core] = true
	} else {
		delete(i.immune, core)
	}
}

// Report is a frozen summary of injector activity.
type Report struct {
	// Rolls and Fired count decision points and injections per class name,
	// for classes with a non-zero rate.
	Rolls map[string]uint64 `json:"rolls,omitempty"`
	Fired map[string]uint64 `json:"fired,omitempty"`
	// Total is the total number of injected faults across classes.
	Total uint64 `json:"total"`
}

// Report returns the injector's activity summary (zero Report when nil).
func (i *Injector) Report() Report {
	rep := Report{}
	if i == nil {
		return rep
	}
	rep.Rolls = map[string]uint64{}
	rep.Fired = map[string]uint64{}
	for c := Class(0); c < NumClasses; c++ {
		if i.cfg.Rates[c] <= 0 {
			continue
		}
		rep.Rolls[c.String()] = i.rolls[c]
		rep.Fired[c.String()] = i.fired[c]
		rep.Total += i.fired[c]
	}
	return rep
}

// Injected returns the total number of faults injected so far.
func (i *Injector) Injected() uint64 {
	if i == nil {
		return 0
	}
	var t uint64
	for c := Class(0); c < NumClasses; c++ {
		t += i.fired[c]
	}
	return t
}
