package fault

import (
	"math"
	"testing"
)

// TestNilInjectorIsDisabled: a nil *Injector must be safe and inert at every
// entry point, like a nil telemetry.Registry.
func TestNilInjectorIsDisabled(t *testing.T) {
	var inj *Injector
	for c := Class(0); c < NumClasses; c++ {
		if inj.Fire(0, c) {
			t.Fatalf("nil injector fired %v", c)
		}
		if inj.Enabled(c) {
			t.Fatalf("nil injector claims %v enabled", c)
		}
	}
	if got := inj.Amount(OTStall, 100); got != 1 {
		t.Fatalf("nil Amount = %d, want 1", got)
	}
	inj.SetImmune(3, true)
	if rep := inj.Report(); rep.Total != 0 {
		t.Fatalf("nil Report total = %d", rep.Total)
	}
	if inj.Injected() != 0 {
		t.Fatalf("nil Injected != 0")
	}
}

// TestDeterminism: two injectors with the same config must produce the
// identical decision and magnitude sequences.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42}
	for c := range cfg.Rates {
		cfg.Rates[c] = 0.25
	}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for i := 0; i < 5000; i++ {
		c := Class(i % int(NumClasses))
		if a.Fire(i%4, c) != b.Fire(i%4, c) {
			t.Fatalf("decision %d diverged", i)
		}
		if a.Amount(c, 100) != b.Amount(c, 100) {
			t.Fatalf("amount %d diverged", i)
		}
	}
	ra, rb := a.Report(), b.Report()
	if ra.Total != rb.Total {
		t.Fatalf("totals diverged: %d vs %d", ra.Total, rb.Total)
	}
	if ra.Total == 0 {
		t.Fatalf("no faults fired at rate 0.25 over 5000 rolls")
	}
}

// TestSeedChangesSchedule: different seeds must produce different schedules
// (with overwhelming probability at these sizes).
func TestSeedChangesSchedule(t *testing.T) {
	mk := func(seed uint64) []bool {
		inj := NewInjector(Config{Seed: seed}.WithRate(SigFalsePos, 0.3))
		out := make([]bool, 2000)
		for i := range out {
			out[i] = inj.Fire(0, SigFalsePos)
		}
		return out
	}
	a, b := mk(1), mk(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("seeds 1 and 2 produced identical 2000-roll schedules")
	}
}

// TestRateAccuracy: the empirical injection rate should approximate the
// configured rate.
func TestRateAccuracy(t *testing.T) {
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		inj := NewInjector(Config{Seed: 7}.WithRate(CommitRace, rate))
		const n = 50000
		fired := 0
		for i := 0; i < n; i++ {
			if inj.Fire(0, CommitRace) {
				fired++
			}
		}
		got := float64(fired) / n
		if math.Abs(got-rate) > rate*0.2+0.002 {
			t.Fatalf("rate %.3f: observed %.4f over %d rolls", rate, got, n)
		}
	}
}

// TestImmunity: an immune core never receives an injection, and immunity is
// reversible; core -1 (no single core) ignores immunity.
func TestImmunity(t *testing.T) {
	inj := NewInjector(Config{Seed: 3}.WithRate(AlertLoss, 1.0))
	inj.SetImmune(2, true)
	for i := 0; i < 100; i++ {
		if inj.Fire(2, AlertLoss) {
			t.Fatalf("immune core received an injection")
		}
	}
	if !inj.Fire(1, AlertLoss) {
		t.Fatalf("non-immune core missed a rate-1 injection")
	}
	if !inj.Fire(-1, AlertLoss) {
		t.Fatalf("core -1 must ignore immunity")
	}
	inj.SetImmune(2, false)
	if !inj.Fire(2, AlertLoss) {
		t.Fatalf("re-exposed core missed a rate-1 injection")
	}
}

// TestAmountBounds: Amount stays in [1, max].
func TestAmountBounds(t *testing.T) {
	inj := NewInjector(Config{Seed: 11}.WithRate(OTStall, 1))
	for i := 0; i < 1000; i++ {
		v := inj.Amount(OTStall, 160)
		if v < 1 || v > 160 {
			t.Fatalf("Amount out of range: %d", v)
		}
	}
}

// TestParseSpec covers the spec grammar, including "all" and errors.
func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("sig-fp:0.1,alert-loss:0.05", 9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 || cfg.Rates[SigFalsePos] != 0.1 || cfg.Rates[AlertLoss] != 0.05 {
		t.Fatalf("bad parse: %+v", cfg)
	}
	if cfg.Rates[CommitRace] != 0 {
		t.Fatalf("unset class has a rate")
	}

	cfg, err = ParseSpec("all:0.2", 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := Class(0); c < NumClasses; c++ {
		if cfg.Rates[c] != 0.2 {
			t.Fatalf("all: class %v rate %v", c, cfg.Rates[c])
		}
	}
	if !cfg.Any() {
		t.Fatalf("Any() false after all:0.2")
	}

	if cfg, err := ParseSpec("", 1); err != nil || cfg.Any() {
		t.Fatalf("empty spec: %v %v", cfg, err)
	}
	for _, bad := range []string{"nope:0.1", "sig-fp", "sig-fp:2", "sig-fp:-1", "sig-fp:x"} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Fatalf("spec %q did not error", bad)
		}
	}
}

// TestClassRoundTrip: String/ParseClass are inverses.
func TestClassRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("round trip %v: %v %v", c, got, err)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Fatalf("ParseClass(bogus) did not error")
	}
}
