package baselines

import (
	"testing"

	"flextm/internal/baselines/bulk"
	"flextm/internal/baselines/cgl"
	"flextm/internal/baselines/rstm"
	"flextm/internal/baselines/rtmf"
	"flextm/internal/baselines/tl2"
	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// systems returns one of every runtime over a fresh machine.
func systems() map[string]func() (tmapi.Runtime, *tmesi.System) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 8
	return map[string]func() (tmapi.Runtime, *tmesi.System){
		"CGL": func() (tmapi.Runtime, *tmesi.System) {
			sys := tmesi.New(cfg)
			return cgl.New(sys), sys
		},
		"TL2": func() (tmapi.Runtime, *tmesi.System) {
			sys := tmesi.New(cfg)
			return tl2.New(sys), sys
		},
		"RSTM": func() (tmapi.Runtime, *tmesi.System) {
			sys := tmesi.New(cfg)
			return rstm.New(sys, cm.NewPolka()), sys
		},
		"RTM-F": func() (tmapi.Runtime, *tmesi.System) {
			sys := tmesi.New(cfg)
			return rtmf.New(sys, cm.NewPolka()), sys
		},
		"FlexTM-Lazy": func() (tmapi.Runtime, *tmesi.System) {
			sys := tmesi.New(cfg)
			return core.New(sys, core.Lazy, cm.NewPolka()), sys
		},
		"Bulk": func() (tmapi.Runtime, *tmesi.System) {
			sys := tmesi.New(cfg)
			return bulk.New(sys), sys
		},
	}
}

func runAll(t *testing.T, rt tmapi.Runtime, bodies ...func(th tmapi.Thread)) {
	t.Helper()
	e := sim.NewEngine()
	for i, b := range bodies {
		core, body := i, b
		e.Spawn("w", 0, func(ctx *sim.Ctx) { body(rt.Bind(ctx, core)) })
	}
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%s: %d threads blocked", rt.Name(), blocked)
	}
}

func TestCounterSerializesOnEverySystem(t *testing.T) {
	const threads, incs = 6, 25
	for name, mk := range systems() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			rt, sys := mk()
			x := sys.Alloc().Alloc(1)
			bodies := make([]func(tmapi.Thread), threads)
			for i := range bodies {
				bodies[i] = func(th tmapi.Thread) {
					for j := 0; j < incs; j++ {
						th.Atomic(func(tx tmapi.Txn) {
							tx.Store(x, tx.Load(x)+1)
						})
						th.Work(100)
					}
				}
			}
			runAll(t, rt, bodies...)
			if v := sys.ReadWordRaw(x); v != threads*incs {
				t.Fatalf("counter = %d, want %d", v, threads*incs)
			}
			if s := rt.Stats(); s.Commits != threads*incs {
				t.Fatalf("commits = %d, want %d", s.Commits, threads*incs)
			}
		})
	}
}

func TestBankInvariantOnEverySystem(t *testing.T) {
	const accounts, threads, transfers, initial = 12, 5, 20, 500
	for name, mk := range systems() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			rt, sys := mk()
			base := sys.Alloc().Alloc(accounts * memory.LineWords)
			acct := func(i int) memory.Addr { return base + memory.Addr(i*memory.LineWords) }
			for i := 0; i < accounts; i++ {
				sys.Image().WriteWord(acct(i), initial)
			}
			bodies := make([]func(tmapi.Thread), threads)
			for i := range bodies {
				bodies[i] = func(th tmapi.Thread) {
					r := th.Rand()
					for j := 0; j < transfers; j++ {
						from, to := r.Intn(accounts), r.Intn(accounts)
						amt := uint64(r.Intn(20))
						th.Atomic(func(tx tmapi.Txn) {
							f := tx.Load(acct(from))
							if f < amt {
								return
							}
							tx.Store(acct(from), f-amt)
							tx.Store(acct(to), tx.Load(acct(to))+amt)
						})
					}
				}
			}
			runAll(t, rt, bodies...)
			var total uint64
			for i := 0; i < accounts; i++ {
				total += sys.ReadWordRaw(acct(i))
			}
			if total != accounts*initial {
				t.Fatalf("total = %d, want %d", total, accounts*initial)
			}
		})
	}
}

func TestReadOnlyTxnsAreCheapOnTL2(t *testing.T) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 2
	sys := tmesi.New(cfg)
	rt := tl2.New(sys)
	x := sys.Alloc().Alloc(1)
	var roCycles, rwCycles sim.Time
	runAll(t, rt, func(th tmapi.Thread) {
		th.Atomic(func(tx tmapi.Txn) { tx.Load(x) }) // warm
		t0 := th.Ctx().Now()
		th.Atomic(func(tx tmapi.Txn) { tx.Load(x) })
		roCycles = th.Ctx().Now() - t0
		t1 := th.Ctx().Now()
		th.Atomic(func(tx tmapi.Txn) { tx.Store(x, tx.Load(x)) })
		rwCycles = th.Ctx().Now() - t1
	})
	if roCycles >= rwCycles {
		t.Fatalf("read-only txn (%d cy) not cheaper than read-write (%d cy)", roCycles, rwCycles)
	}
}

func TestRSTMValidationCostGrowsWithReadSet(t *testing.T) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 2
	sys := tmesi.New(cfg)
	rt := rstm.New(sys, cm.NewPolka())
	base := sys.Alloc().Alloc(128 * memory.LineWords)
	measure := func(n int) sim.Time {
		var cost sim.Time
		runAll(t, rt, func(th tmapi.Thread) {
			// warm the data
			th.Atomic(func(tx tmapi.Txn) {
				for i := 0; i < n; i++ {
					tx.Load(base + memory.Addr(i*memory.LineWords))
				}
			})
			t0 := th.Ctx().Now()
			th.Atomic(func(tx tmapi.Txn) {
				for i := 0; i < n; i++ {
					tx.Load(base + memory.Addr(i*memory.LineWords))
				}
			})
			cost = th.Ctx().Now() - t0
		})
		return cost
	}
	c8, c96 := measure(8), measure(96)
	// Quadratic validation: per-read cost must grow with the read set.
	if float64(c96)/96 < 1.5*float64(c8)/8 {
		t.Fatalf("per-read cost did not grow superlinearly: %d cy / 8 reads vs %d cy / 96 reads", c8, c96)
	}
}

func TestRTMFUsesPDINotClones(t *testing.T) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 2
	sys := tmesi.New(cfg)
	rt := rtmf.New(sys, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	runAll(t, rt, func(th tmapi.Thread) {
		th.Atomic(func(tx tmapi.Txn) { tx.Store(x, 5) })
	})
	if sys.Stats().TStores == 0 {
		t.Fatal("RTM-F writes did not go through PDI TStores")
	}
	if v := sys.ReadWordRaw(x); v != 5 {
		t.Fatalf("x = %d, want 5", v)
	}
}

func TestCGLAbortPanics(t *testing.T) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 1
	sys := tmesi.New(cfg)
	rt := cgl.New(sys)
	e := sim.NewEngine()
	e.Spawn("w", 0, func(ctx *sim.Ctx) {
		th := rt.Bind(ctx, 0)
		defer func() {
			if recover() == nil {
				t.Error("CGL Abort did not panic")
			}
		}()
		th.Atomic(func(tx tmapi.Txn) { tx.Abort() })
	})
	e.Run()
}
