// Package cgl implements the coarse-grain-lock baseline of the paper's
// evaluation: every Atomic section acquires one global test-and-test-and-set
// lock in simulated memory. Single-thread CGL throughput is the
// normalization basis for every plot in Figure 4 and Figure 5.
package cgl

import (
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// Runtime is a coarse-grain lock "TM".
type Runtime struct {
	sys   *tmesi.System
	lock  *Spinlock
	stats []tmapi.Stats
}

// New returns a CGL runtime over sys.
func New(sys *tmesi.System) *Runtime {
	return &Runtime{
		sys:   sys,
		lock:  NewSpinlock(sys),
		stats: make([]tmapi.Stats, sys.Config().Cores),
	}
}

// Name implements tmapi.Runtime.
func (rt *Runtime) Name() string { return "CGL" }

// Stats implements tmapi.Runtime.
func (rt *Runtime) Stats() tmapi.Stats {
	var total tmapi.Stats
	for i := range rt.stats {
		total.Commits += rt.stats[i].Commits
		total.Aborts += rt.stats[i].Aborts
	}
	return total
}

// Bind implements tmapi.Runtime.
func (rt *Runtime) Bind(ctx *sim.Ctx, core int) tmapi.Thread {
	return &thread{
		rt:   rt,
		ctx:  ctx,
		core: core,
		rnd:  sim.NewRand(uint64(core)*0x9E3779B9 + 0xC61),
	}
}

type thread struct {
	rt    *Runtime
	ctx   *sim.Ctx
	core  int
	rnd   *sim.Rand
	depth int
}

func (th *thread) Core() int       { return th.core }
func (th *thread) Ctx() *sim.Ctx   { return th.ctx }
func (th *thread) Rand() *sim.Rand { return th.rnd }
func (th *thread) Work(d sim.Time) { th.ctx.Advance(d) }
func (th *thread) Load(a memory.Addr) uint64 {
	return th.rt.sys.Load(th.ctx, th.core, a).Val
}
func (th *thread) Store(a memory.Addr, v uint64) {
	th.rt.sys.Store(th.ctx, th.core, a, v)
}

// Atomic implements tmapi.Thread by bracketing body with the global lock.
func (th *thread) Atomic(body func(tmapi.Txn)) {
	if th.depth > 0 {
		th.depth++
		defer func() { th.depth-- }()
		body(txn{th})
		return
	}
	th.rt.lock.Acquire(th.ctx, th.core, th.rnd)
	th.depth = 1
	defer func() {
		th.depth = 0
		th.rt.lock.Release(th.ctx, th.core)
		th.rt.stats[th.core].Commits++
	}()
	body(txn{th})
}

// txn adapts lock-protected plain access to tmapi.Txn.
type txn struct{ th *thread }

// Load implements tmapi.Txn.
func (t txn) Load(a memory.Addr) uint64 { return t.th.rt.sys.Load(t.th.ctx, t.th.core, a).Val }

// Store implements tmapi.Txn.
func (t txn) Store(a memory.Addr, v uint64) { t.th.rt.sys.Store(t.th.ctx, t.th.core, a, v) }

// Abort is meaningless under a lock; CGL sections are not speculative.
// Workloads only call Abort for explicit retry, which none of the paper's
// benchmarks do, so this panics to surface misuse.
func (t txn) Abort() { panic("cgl: Abort inside a lock-based atomic section") }
