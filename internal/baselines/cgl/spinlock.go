package cgl

import (
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmesi"
)

// Spinlock is a test-and-test-and-set lock in simulated memory. It is the
// primitive under the CGL baseline's Atomic, and it doubles as the
// serialized-irrevocable fallback gate for the FlexTM runtime's liveness
// escalation path: a thread that trips its watchdog acquires the lock and
// re-runs its transaction with no concurrent fallback holders.
type Spinlock struct {
	sys  *tmesi.System
	addr memory.Addr
}

// NewSpinlock allocates a lock word (its own cache line) on sys.
func NewSpinlock(sys *tmesi.System) *Spinlock {
	return &Spinlock{sys: sys, addr: sys.Alloc().Alloc(memory.LineWords)}
}

// Held reports whether the lock is currently owned. It costs one (possibly
// cached) load.
func (l *Spinlock) Held(ctx *sim.Ctx, core int) bool {
	return l.sys.Load(ctx, core, l.addr).Val != 0
}

// SpinWhileHeld blocks (in simulated time) until the lock is observed free.
// It does not acquire; callers that merely need to drain behind an exclusive
// holder (the fallback gate) use this so the un-contended path stays free of
// CAS traffic.
func (l *Spinlock) SpinWhileHeld(ctx *sim.Ctx, core int, rnd *sim.Rand) {
	for attempt := 0; l.Held(ctx, core); attempt++ {
		pause(ctx, rnd, attempt)
	}
}

// Acquire spins with test-and-test-and-set: a short tight spin first (the
// common handoff case), then bounded randomized backoff so heavy contention
// does not saturate the lock line.
func (l *Spinlock) Acquire(ctx *sim.Ctx, core int, rnd *sim.Rand) {
	for attempt := 0; ; attempt++ {
		if l.sys.Load(ctx, core, l.addr).Val == 0 {
			if _, ok := l.sys.CAS(ctx, core, l.addr, 0, uint64(core)+1); ok {
				return
			}
		}
		pause(ctx, rnd, attempt)
	}
}

// Release stores zero; only the holder may call it.
func (l *Spinlock) Release(ctx *sim.Ctx, core int) {
	l.sys.Store(ctx, core, l.addr, 0)
}

// pause advances simulated time between lock probes: tight for the first few
// attempts, then randomized exponential backoff capped at a 128-cycle window.
func pause(ctx *sim.Ctx, rnd *sim.Rand, attempt int) {
	if attempt < 4 {
		ctx.Advance(4) // tight spin on the cached line
		return
	}
	shift := attempt - 4
	if shift > 3 {
		shift = 3
	}
	ctx.Advance(sim.Time(rnd.Intn(16<<uint(shift) + 1)))
}
