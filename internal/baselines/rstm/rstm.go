// Package rstm implements an object-based software TM in the style of RSTM
// (Marathe et al.), configured as in the paper's evaluation: invisible
// readers with self validation for conflict detection, clone-on-write
// versioning, and a contention manager for writer-writer arbitration.
//
// Objects are cache-line granules guarded by header words in simulated
// memory. Every open pays the metadata costs the paper charges RSTM for:
// a header load (indirection), a status-word check, acquisition CASes for
// writers, a full clone on first write, and — because readers are
// invisible — re-validation of the entire read list on every open. All of
// this traffic goes through the simulated memory system.
package rstm

import (
	"flextm/internal/cm"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// Headers is the size of the object-header table.
const Headers = 1 << 13

// Status-word values.
const (
	stActive    = 1
	stCommitted = 2
	stAborted   = 3
)

// header encoding: version<<8 | (owner+1); low byte 0 means unowned.
const ownerMask = 0xFF

// Runtime is an RSTM instance.
type Runtime struct {
	sys     *tmesi.System
	mgr     cm.Manager
	headers memory.Addr
	status  []memory.Addr // per-core current status word (fresh per txn)
	arenas  [][]memory.Addr
	arenaIx []int
	clones  []memory.Addr // per-core clone arena (ring of lines)
	cloneIx []int
	karma   []int
	stats   []tmapi.Stats
}

const statusSlots = 64
const cloneLines = 512

// New returns an RSTM runtime over sys using manager mgr.
func New(sys *tmesi.System, mgr cm.Manager) *Runtime {
	cores := sys.Config().Cores
	rt := &Runtime{
		sys:     sys,
		mgr:     mgr,
		headers: sys.Alloc().Alloc(Headers * memory.LineWords),
		status:  make([]memory.Addr, cores),
		arenas:  make([][]memory.Addr, cores),
		arenaIx: make([]int, cores),
		clones:  make([]memory.Addr, cores),
		cloneIx: make([]int, cores),
		karma:   make([]int, cores),
		stats:   make([]tmapi.Stats, cores),
	}
	for c := 0; c < cores; c++ {
		slots := make([]memory.Addr, statusSlots)
		for i := range slots {
			slots[i] = sys.Alloc().Alloc(memory.LineWords)
		}
		rt.arenas[c] = slots
		rt.clones[c] = sys.Alloc().Alloc(cloneLines * memory.LineWords)
	}
	return rt
}

// Name implements tmapi.Runtime.
func (rt *Runtime) Name() string { return "RSTM" }

// Stats implements tmapi.Runtime.
func (rt *Runtime) Stats() tmapi.Stats {
	var total tmapi.Stats
	for i := range rt.stats {
		total.Commits += rt.stats[i].Commits
		total.Aborts += rt.stats[i].Aborts
	}
	return total
}

// Bind implements tmapi.Runtime.
func (rt *Runtime) Bind(ctx *sim.Ctx, core int) tmapi.Thread {
	return &thread{
		rt:   rt,
		ctx:  ctx,
		core: core,
		rnd:  sim.NewRand(uint64(core)*0x9E3779B9 + 0x57A),
	}
}

// headerOf maps a line to its header word. Headers sit on distinct cache
// lines so that acquiring one object does not invalidate neighbors.
func (rt *Runtime) headerOf(l memory.LineAddr) memory.Addr {
	h := uint64(l) * 0xC2B2AE3D27D4EB4F
	return rt.headers + memory.Addr((h%Headers)*memory.LineWords)
}

type readEntry struct {
	hdr memory.Addr
	ver uint64
}

type writeEntry struct {
	line  memory.LineAddr
	hdr   memory.Addr
	ver   uint64 // pre-acquire version
	clone memory.Addr
}

type thread struct {
	rt    *Runtime
	ctx   *sim.Ctx
	core  int
	rnd   *sim.Rand
	depth int

	status  memory.Addr
	reads   []readEntry
	opened  map[memory.LineAddr]bool // lines already opened read-only
	writes  []writeEntry
	written map[memory.LineAddr]int // line -> index in writes
	aborts  int
}

func (th *thread) Core() int       { return th.core }
func (th *thread) Ctx() *sim.Ctx   { return th.ctx }
func (th *thread) Rand() *sim.Rand { return th.rnd }
func (th *thread) Work(d sim.Time) { th.ctx.Advance(d) }
func (th *thread) Load(a memory.Addr) uint64 {
	return th.rt.sys.Load(th.ctx, th.core, a).Val
}
func (th *thread) Store(a memory.Addr, v uint64) {
	th.rt.sys.Store(th.ctx, th.core, a, v)
}

// Atomic implements tmapi.Thread.
func (th *thread) Atomic(body func(tmapi.Txn)) {
	if th.depth > 0 {
		th.depth++
		defer func() { th.depth-- }()
		body(txn{th})
		return
	}
	for {
		th.begin()
		if th.attempt(body) {
			th.rt.stats[th.core].Commits++
			th.aborts = 0
			return
		}
		th.rt.stats[th.core].Aborts++
		th.aborts++
		th.ctx.Advance(th.rt.mgr.RetryBackoff(th.aborts, th.rnd))
	}
}

func (th *thread) begin() {
	rt := th.rt
	i := rt.arenaIx[th.core]
	rt.arenaIx[th.core] = (i + 1) % statusSlots
	th.status = rt.arenas[th.core][i]
	rt.sys.Store(th.ctx, th.core, th.status, stActive)
	rt.status[th.core] = th.status
	rt.karma[th.core] = 0
	th.reads = th.reads[:0]
	th.opened = make(map[memory.LineAddr]bool)
	th.writes = th.writes[:0]
	th.written = make(map[memory.LineAddr]int)
	rt.cloneIx[th.core] = 0
}

func (th *thread) attempt(body func(tmapi.Txn)) (ok bool) {
	th.depth = 1
	defer func() {
		th.depth = 0
		if r := recover(); r != nil {
			if _, isAbort := r.(tmapi.AbortError); !isAbort {
				panic(r)
			}
			th.releaseAll(false)
		}
	}()
	body(txn{th})
	return th.commit()
}

func abort() { panic(tmapi.AbortError{}) }

// checkSelf polls the transaction's own status word: invisible readers must
// notice remote aborts themselves.
func (th *thread) checkSelf() {
	if th.rt.sys.Load(th.ctx, th.core, th.status).Val == stAborted {
		abort()
	}
}

// validate re-reads every header in the read list (RSTM's self-validation,
// performed on each open). This is the quadratic cost the paper measures at
// up to 80% of RandomGraph's execution time.
func (th *thread) validate() {
	sys := th.rt.sys
	for _, re := range th.reads {
		h := sys.Load(th.ctx, th.core, re.hdr).Val
		th.ctx.Advance(2) // loop + compare instructions
		if h != re.ver {
			// Acquiring the object ourselves is fine only if its version
			// has not advanced since we read it; otherwise the read is
			// stale even though we now own the header.
			if owner := h & ownerMask; owner != 0 && int(owner-1) == th.core &&
				h&^uint64(ownerMask) == re.ver&^uint64(ownerMask) {
				continue
			}
			abort()
		}
	}
}

// barrier instruction costs: a 2006-era C++ STM spends on the order of a
// hundred instructions per object open (function calls, descriptor
// bookkeeping, memory management), beyond the metadata memory traffic that
// is charged as simulated accesses.
const (
	openROWork  = 60
	openRWWork  = 120
	readIndWork = 5
)

// openRO performs the read-side protocol for line and returns the header
// value observed.
func (th *thread) openRO(line memory.LineAddr) {
	rt, sys := th.rt, th.rt.sys
	hdr := rt.headerOf(line)
	th.ctx.Advance(openROWork)
	th.checkSelf()
	for attempt := 0; ; attempt++ {
		h := sys.Load(th.ctx, th.core, hdr).Val
		owner := h & ownerMask
		if owner == 0 || int(owner-1) == th.core {
			th.reads = append(th.reads, readEntry{hdr: hdr, ver: h})
			break
		}
		th.contend(int(owner-1), attempt)
	}
	rt.karma[th.core]++
	th.validate()
}

// openRW acquires the header for line and clones the object on first
// write, returning the clone address writes should target.
func (th *thread) openRW(line memory.LineAddr) memory.Addr {
	rt, sys := th.rt, th.rt.sys
	if i, ok := th.written[line]; ok {
		return th.writes[i].clone
	}
	hdr := rt.headerOf(line)
	th.ctx.Advance(openRWWork)
	th.checkSelf()
	var pre uint64
	for attempt := 0; ; attempt++ {
		h := sys.Load(th.ctx, th.core, hdr).Val
		owner := h & ownerMask
		if owner == 0 {
			if _, ok := sys.CAS(th.ctx, th.core, hdr, h, h|uint64(th.core+1)); ok {
				pre = h
				break
			}
			continue
		}
		if int(owner-1) == th.core {
			// Shouldn't happen (written map covers it), but be safe.
			pre = h &^ ownerMask
			break
		}
		th.contend(int(owner-1), attempt)
	}
	// Clone: copy the canonical line into the thread's clone arena.
	ci := rt.cloneIx[th.core]
	if ci >= cloneLines {
		panic("rstm: transaction write set exceeds clone arena")
	}
	rt.cloneIx[th.core]++
	clone := rt.clones[th.core] + memory.Addr(ci*memory.LineWords)
	for w := 0; w < memory.LineWords; w++ {
		v := sys.Load(th.ctx, th.core, line.WordOf(w)).Val
		sys.Store(th.ctx, th.core, clone+memory.Addr(w), v)
	}
	th.writes = append(th.writes, writeEntry{line: line, hdr: hdr, ver: pre, clone: clone})
	th.written[line] = len(th.writes) - 1
	rt.karma[th.core]++
	th.validate()
	return clone
}

// contend consults the contention manager about a conflicting owner.
func (th *thread) contend(enemy int, attempt int) {
	rt := th.rt
	dec, wait := rt.mgr.OnConflict(cm.Conflict{
		Me: th.core, Enemy: enemy,
		MyKarma: rt.karma[th.core], EnemyKarma: rt.karma[enemy],
		Attempt: attempt,
	}, th.rnd)
	switch dec {
	case cm.AbortSelf:
		abort()
	case cm.AbortEnemy:
		rt.sys.CAS(th.ctx, th.core, rt.status[enemy], stActive, stAborted)
		// Loop re-reads the header; the enemy releases it on its abort.
		th.ctx.Advance(64)
	case cm.Wait:
		th.ctx.Advance(wait)
	}
	if attempt > 30 {
		abort() // bounded patience: never spin forever on a stuck owner
	}
}

// commit validates once more, swings the status word, copies clones back,
// and releases headers with bumped versions.
func (th *thread) commit() bool {
	sys := th.rt.sys
	th.validate()
	if _, ok := sys.CAS(th.ctx, th.core, th.status, stActive, stCommitted); !ok {
		th.releaseAll(false)
		return false
	}
	th.releaseAll(true)
	return true
}

// releaseAll publishes (commit=true) or discards (commit=false) clones and
// releases every acquired header.
func (th *thread) releaseAll(commit bool) {
	sys := th.rt.sys
	for _, we := range th.writes {
		if commit {
			for w := 0; w < memory.LineWords; w++ {
				v := sys.Load(th.ctx, th.core, we.clone+memory.Addr(w)).Val
				sys.Store(th.ctx, th.core, we.line.WordOf(w), v)
			}
			sys.Store(th.ctx, th.core, we.hdr, we.ver+(1<<8)) // new version, unowned
		} else {
			sys.Store(th.ctx, th.core, we.hdr, we.ver)
		}
	}
}

// txn adapts the thread to tmapi.Txn.
type txn struct{ th *thread }

// Load implements tmapi.Txn.
func (t txn) Load(a memory.Addr) uint64 {
	th := t.th
	line := a.Line()
	if i, ok := th.written[line]; ok {
		return th.rt.sys.Load(th.ctx, th.core, th.writes[i].clone+memory.Addr(a.Offset())).Val
	}
	if !th.opened[line] {
		th.openRO(line)
		th.opened[line] = true
	}
	th.ctx.Advance(readIndWork) // pointer indirection through the header
	return th.rt.sys.Load(th.ctx, th.core, a).Val
}

// Store implements tmapi.Txn.
func (t txn) Store(a memory.Addr, v uint64) {
	th := t.th
	clone := th.openRW(a.Line())
	th.rt.sys.Store(th.ctx, th.core, clone+memory.Addr(a.Offset()), v)
}

// Abort implements tmapi.Txn.
func (t txn) Abort() { panic(tmapi.AbortError{UserRequested: true}) }
