// Package tl2 implements a word-based software TM in the style of
// Transactional Locking II (Dice, Shalev & Shavit, DISC 2006), the STM the
// paper compares against for Workload-Set 2 (Vacation). It runs on "legacy
// hardware": all of its bookkeeping — the global version clock, the
// per-stripe versioned write locks, and the redo log — lives in simulated
// memory and is accessed with ordinary coherent loads, stores, and CASes,
// so its per-access costs emerge from the same latency model as FlexTM's
// hardware paths.
package tl2

import (
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// Stripes is the size of the versioned-lock table. Addresses hash to
// stripes at cache-line granularity; collisions cause false conflicts,
// as in the real system.
const Stripes = 1 << 13

// logWords is the per-thread redo-log region size (ring).
const logWords = 4096

// Lock-word encoding: version<<1, low bit set while write-locked.
const lockedBit = 1

// Runtime is a TL2 instance.
type Runtime struct {
	sys   *tmesi.System
	clock memory.Addr // global version clock
	locks memory.Addr // stripe lock words, one per word to avoid pathological false sharing beyond hashing
	logs  []memory.Addr
	stats []tmapi.Stats
	// SpinLimit bounds how long a reader/writer waits on a locked stripe
	// before aborting.
	SpinLimit int
}

// New returns a TL2 runtime over sys.
func New(sys *tmesi.System) *Runtime {
	cores := sys.Config().Cores
	rt := &Runtime{
		sys:       sys,
		clock:     sys.Alloc().Alloc(memory.LineWords),
		locks:     sys.Alloc().Alloc(Stripes),
		logs:      make([]memory.Addr, cores),
		stats:     make([]tmapi.Stats, cores),
		SpinLimit: 8,
	}
	for i := range rt.logs {
		rt.logs[i] = sys.Alloc().Alloc(logWords)
	}
	return rt
}

// Name implements tmapi.Runtime.
func (rt *Runtime) Name() string { return "TL2" }

// Stats implements tmapi.Runtime.
func (rt *Runtime) Stats() tmapi.Stats {
	var total tmapi.Stats
	for i := range rt.stats {
		total.Commits += rt.stats[i].Commits
		total.Aborts += rt.stats[i].Aborts
	}
	return total
}

// Bind implements tmapi.Runtime.
func (rt *Runtime) Bind(ctx *sim.Ctx, core int) tmapi.Thread {
	return &thread{
		rt:   rt,
		ctx:  ctx,
		core: core,
		rnd:  sim.NewRand(uint64(core)*0x9E3779B9 + 0x71E2),
	}
}

// stripeOf maps an address to its lock word (line granularity hash).
func (rt *Runtime) stripeOf(a memory.Addr) memory.Addr {
	h := uint64(a.Line()) * 0x9E3779B97F4A7C15
	return rt.locks + memory.Addr(h%Stripes)
}

type thread struct {
	rt    *Runtime
	ctx   *sim.Ctx
	core  int
	rnd   *sim.Rand
	depth int

	rv       uint64
	readSet  []memory.Addr // stripe addresses with observed versions
	readVer  []uint64
	writeMap map[memory.Addr]uint64 // address -> buffered value (redo)
	writeOrd []memory.Addr          // insertion order for deterministic commit
	logPos   int
	aborts   int
}

func (th *thread) Core() int       { return th.core }
func (th *thread) Ctx() *sim.Ctx   { return th.ctx }
func (th *thread) Rand() *sim.Rand { return th.rnd }
func (th *thread) Work(d sim.Time) { th.ctx.Advance(d) }
func (th *thread) Load(a memory.Addr) uint64 {
	return th.rt.sys.Load(th.ctx, th.core, a).Val
}
func (th *thread) Store(a memory.Addr, v uint64) {
	th.rt.sys.Store(th.ctx, th.core, a, v)
}

// Atomic implements tmapi.Thread.
func (th *thread) Atomic(body func(tmapi.Txn)) {
	if th.depth > 0 {
		th.depth++
		defer func() { th.depth-- }()
		body(txn{th})
		return
	}
	for {
		th.begin()
		if th.attempt(body) {
			th.rt.stats[th.core].Commits++
			th.aborts = 0
			return
		}
		th.rt.stats[th.core].Aborts++
		th.aborts++
		shift := th.aborts
		if shift > 10 {
			shift = 10
		}
		th.ctx.Advance(sim.Time(th.rnd.Intn(32<<uint(shift) + 1)))
	}
}

func (th *thread) begin() {
	th.rv = th.rt.sys.Load(th.ctx, th.core, th.rt.clock).Val
	th.readSet = th.readSet[:0]
	th.readVer = th.readVer[:0]
	th.writeMap = make(map[memory.Addr]uint64)
	th.writeOrd = th.writeOrd[:0]
}

func (th *thread) attempt(body func(tmapi.Txn)) (ok bool) {
	th.depth = 1
	defer func() {
		th.depth = 0
		if r := recover(); r != nil {
			if _, isAbort := r.(tmapi.AbortError); !isAbort {
				panic(r)
			}
		}
	}()
	body(txn{th})
	return th.commit()
}

func abort() { panic(tmapi.AbortError{}) }

// txn adapts the thread to tmapi.Txn with TL2 semantics.
type txn struct{ th *thread }

// Load implements tmapi.Txn: the TL2 read protocol — pre-read lock, read
// data, post-read lock check against RV.
func (t txn) Load(a memory.Addr) uint64 {
	th := t.th
	if v, ok := th.writeMap[a]; ok {
		// Bloom-filter + write-set lookup cost in real TL2; one cycle here.
		th.ctx.Advance(1)
		return v
	}
	// Read barrier instructions (bloom filter check, logging, bookkeeping).
	th.ctx.Advance(20)
	sys, stripe := th.rt.sys, th.rt.stripeOf(a)
	l1 := sys.Load(th.ctx, th.core, stripe).Val
	v := sys.Load(th.ctx, th.core, a).Val
	l2 := sys.Load(th.ctx, th.core, stripe).Val
	if l1 != l2 || l1&lockedBit != 0 || l1>>1 > th.rv {
		abort()
	}
	th.readSet = append(th.readSet, stripe)
	th.readVer = append(th.readVer, l1)
	return v
}

// Store implements tmapi.Txn: buffer the value in the redo log.
func (t txn) Store(a memory.Addr, v uint64) {
	th := t.th
	if _, seen := th.writeMap[a]; !seen {
		th.writeOrd = append(th.writeOrd, a)
	}
	th.writeMap[a] = v
	th.ctx.Advance(25) // write barrier instructions
	// Redo-log append traffic: one store into the thread's log ring.
	log := th.rt.logs[th.core] + memory.Addr(th.logPos%logWords)
	th.logPos++
	th.rt.sys.Store(th.ctx, th.core, log, v)
}

// Abort implements tmapi.Txn.
func (t txn) Abort() { panic(tmapi.AbortError{UserRequested: true}) }

// commit runs the TL2 commit protocol: lock the write set, bump the global
// clock, validate the read set, write back, release.
func (th *thread) commit() bool {
	sys := th.rt.sys
	if len(th.writeOrd) == 0 {
		return true // read-only fast path
	}

	// Phase 1: acquire stripe locks (deduplicated, deterministic order).
	held := make([]memory.Addr, 0, len(th.writeOrd))
	heldVer := make([]uint64, 0, len(th.writeOrd))
	locked := make(map[memory.Addr]bool)
	fail := func() bool {
		for i, s := range held {
			sys.Store(th.ctx, th.core, s, heldVer[i])
		}
		return false
	}
	for _, a := range th.writeOrd {
		s := th.rt.stripeOf(a)
		if locked[s] {
			continue
		}
		got := false
		for spin := 0; spin < th.rt.SpinLimit; spin++ {
			cur := sys.Load(th.ctx, th.core, s).Val
			if cur&lockedBit != 0 {
				th.ctx.Advance(sim.Time(32 + th.rnd.Intn(64)))
				continue
			}
			if cur>>1 > th.rv {
				return fail()
			}
			if _, ok := sys.CAS(th.ctx, th.core, s, cur, cur|lockedBit); ok {
				held = append(held, s)
				heldVer = append(heldVer, cur)
				locked[s] = true
				got = true
				break
			}
		}
		if !got {
			return fail()
		}
	}

	// Phase 2: increment the global clock.
	wv := sys.FetchAdd(th.ctx, th.core, th.rt.clock, 1) + 1

	// Phase 3: validate the read set (skip if rv+1 == wv: nothing changed).
	if wv != th.rv+1 {
		for i, s := range th.readSet {
			if locked[s] {
				continue // we hold it
			}
			cur := sys.Load(th.ctx, th.core, s).Val
			if cur != th.readVer[i] {
				return fail()
			}
		}
	}

	// Phase 4: write back and release with the new version.
	for _, a := range th.writeOrd {
		th.ctx.Advance(8) // commit loop bookkeeping
		sys.Store(th.ctx, th.core, a, th.writeMap[a])
	}
	for _, s := range held {
		sys.Store(th.ctx, th.core, s, wv<<1)
	}
	return true
}
