// Package logtm implements a LogTM-SE-flavored baseline (Moore et al.,
// HPCA 2006; Yen et al., HPCA 2007): the design point the paper contrasts
// FlexTM with in Sections 2 and 5. Its characteristics, mirrored here:
//
//   - Eager versioning: stores write the home location in place after
//     saving the old value to a per-thread undo log, so commits are fast
//     (drop the log) and aborts are slow (walk the log in reverse — unlike
//     FlexTM's order-free OT copy-back).
//   - Eager conflict detection with requestor stalls: a conflicting access
//     waits for the owner; transactions cannot abort remote peers (the
//     limitation that lets running transactions convoy behind others).
//   - Deadlock avoidance by age: a younger transaction that has stalled
//     too long behind an older one aborts itself.
//
// Ownership metadata lives in two-word headers in simulated memory
// (word 0: writer, word 1: reader bitmap), standing in for LogTM-SE's
// signature-over-coherence detection; the traffic it generates models the
// NACK/retry protocol.
package logtm

import (
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// Headers is the size of the ownership-header table.
const Headers = 1 << 13

const (
	hWriter = 0 // word 0: writer core + 1, or 0
	hReader = 1 // word 1: reader bitmap
)

// logWords is the per-thread undo-log capacity (address/value pairs).
const logWords = 8192

// Runtime is a LogTM-SE-style instance.
type Runtime struct {
	sys     *tmesi.System
	headers memory.Addr
	logs    []memory.Addr
	stamps  []uint64 // begin timestamps (age) per core
	clock   uint64
	stats   []tmapi.Stats
	// StallLimit bounds how many back-off rounds a younger transaction
	// waits before the age rule makes it abort itself.
	StallLimit int
}

// New returns a LogTM runtime over sys.
func New(sys *tmesi.System) *Runtime {
	cores := sys.Config().Cores
	rt := &Runtime{
		sys:        sys,
		headers:    sys.Alloc().Alloc(Headers * memory.LineWords),
		logs:       make([]memory.Addr, cores),
		stamps:     make([]uint64, cores),
		stats:      make([]tmapi.Stats, cores),
		StallLimit: 20,
	}
	for i := range rt.logs {
		rt.logs[i] = sys.Alloc().Alloc(logWords)
	}
	return rt
}

// Name implements tmapi.Runtime.
func (rt *Runtime) Name() string { return "LogTM" }

// Stats implements tmapi.Runtime.
func (rt *Runtime) Stats() tmapi.Stats {
	var total tmapi.Stats
	for i := range rt.stats {
		total.Commits += rt.stats[i].Commits
		total.Aborts += rt.stats[i].Aborts
	}
	return total
}

// Bind implements tmapi.Runtime.
func (rt *Runtime) Bind(ctx *sim.Ctx, core int) tmapi.Thread {
	return &thread{
		rt:   rt,
		ctx:  ctx,
		core: core,
		rnd:  sim.NewRand(uint64(core)*0x9E3779B9 + 0x106),
	}
}

func (rt *Runtime) headerOf(l memory.LineAddr) memory.Addr {
	h := uint64(l) * 0xC2B2AE3D27D4EB4F
	return rt.headers + memory.Addr((h%Headers)*memory.LineWords)
}

type undoEntry struct {
	addr memory.Addr
	old  uint64
}

type thread struct {
	rt    *Runtime
	ctx   *sim.Ctx
	core  int
	rnd   *sim.Rand
	depth int

	stamp    uint64
	undo     []undoEntry // mirrored in simulated memory at rt.logs[core]
	writeHdr map[memory.Addr]bool
	writeOrd []memory.Addr // deterministic release order
	readHdr  map[memory.Addr]bool
	readOrd  []memory.Addr
	aborts   int
}

func (th *thread) Core() int       { return th.core }
func (th *thread) Ctx() *sim.Ctx   { return th.ctx }
func (th *thread) Rand() *sim.Rand { return th.rnd }
func (th *thread) Work(d sim.Time) { th.ctx.Advance(d) }
func (th *thread) Load(a memory.Addr) uint64 {
	return th.rt.sys.Load(th.ctx, th.core, a).Val
}
func (th *thread) Store(a memory.Addr, v uint64) {
	th.rt.sys.Store(th.ctx, th.core, a, v)
}

// Atomic implements tmapi.Thread.
func (th *thread) Atomic(body func(tmapi.Txn)) {
	if th.depth > 0 {
		th.depth++
		defer func() { th.depth-- }()
		body(txn{th})
		return
	}
	for {
		th.begin()
		if th.attempt(body) {
			th.rt.stats[th.core].Commits++
			th.aborts = 0
			return
		}
		th.rt.stats[th.core].Aborts++
		th.aborts++
		shift := th.aborts
		if shift > 8 {
			shift = 8
		}
		th.ctx.Advance(sim.Time(th.rnd.Intn(64<<uint(shift) + 1)))
	}
}

func (th *thread) begin() {
	rt := th.rt
	rt.clock++
	th.stamp = rt.clock
	rt.stamps[th.core] = th.stamp
	th.undo = th.undo[:0]
	th.writeHdr = make(map[memory.Addr]bool)
	th.writeOrd = th.writeOrd[:0]
	th.readHdr = make(map[memory.Addr]bool)
	th.readOrd = th.readOrd[:0]
	th.ctx.Advance(20) // register checkpoint + log pointer setup
}

func (th *thread) attempt(body func(tmapi.Txn)) (ok bool) {
	th.depth = 1
	defer func() {
		th.depth = 0
		if r := recover(); r != nil {
			if _, isAbort := r.(tmapi.AbortError); !isAbort {
				panic(r)
			}
			th.rollback()
		}
	}()
	body(txn{th})
	th.commit()
	return true
}

func abort() { panic(tmapi.AbortError{}) }

// stall models a NACKed request: back off and retry; the age rule aborts a
// younger transaction that has waited too long (deadlock avoidance).
func (th *thread) stall(attempt int, ownerStamp uint64) {
	if attempt >= th.rt.StallLimit && th.stamp > ownerStamp {
		abort() // younger yields to older: no deadlock
	}
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	th.ctx.Advance(sim.Time(16 + th.rnd.Intn(16<<uint(shift))))
}

// openRead registers this core as a reader of the line, stalling while a
// remote writer owns it.
func (th *thread) openRead(line memory.LineAddr) {
	rt, sys := th.rt, th.rt.sys
	hdr := rt.headerOf(line)
	if th.readHdr[hdr] || th.writeHdr[hdr] {
		return
	}
	myBit := uint64(1) << uint(th.core)
	for attempt := 0; ; attempt++ {
		w := sys.Load(th.ctx, th.core, hdr+hWriter).Val
		if w != 0 && int(w-1) != th.core {
			th.stall(attempt, rt.stamps[w-1])
			continue
		}
		// Publish our reader bit (atomic RMW on the header's reader word).
		for {
			cur := sys.Load(th.ctx, th.core, hdr+hReader).Val
			if _, ok := sys.CAS(th.ctx, th.core, hdr+hReader, cur, cur|myBit); ok {
				break
			}
		}
		// Re-check the writer: one may have acquired (and begun writing in
		// place) between our check and the bit publication. If so, retreat
		// and stall — reading now could observe uncommitted data.
		w = sys.Load(th.ctx, th.core, hdr+hWriter).Val
		if w != 0 && int(w-1) != th.core {
			for {
				cur := sys.Load(th.ctx, th.core, hdr+hReader).Val
				if _, ok := sys.CAS(th.ctx, th.core, hdr+hReader, cur, cur&^myBit); ok {
					break
				}
			}
			th.stall(attempt, rt.stamps[w-1])
			continue
		}
		break
	}
	th.readHdr[hdr] = true
	th.readOrd = append(th.readOrd, hdr)
}

// openWrite acquires write ownership of the line, stalling while remote
// readers or a writer hold it.
func (th *thread) openWrite(line memory.LineAddr) {
	rt, sys := th.rt, th.rt.sys
	hdr := rt.headerOf(line)
	if th.writeHdr[hdr] {
		return
	}
	for attempt := 0; ; attempt++ {
		w := sys.Load(th.ctx, th.core, hdr+hWriter).Val
		if w != 0 && int(w-1) != th.core {
			th.stall(attempt, rt.stamps[w-1])
			continue
		}
		if w == 0 {
			if _, ok := sys.CAS(th.ctx, th.core, hdr+hWriter, 0, uint64(th.core)+1); !ok {
				continue
			}
			th.writeHdr[hdr] = true
			th.writeOrd = append(th.writeOrd, hdr)
		} else {
			th.writeHdr[hdr] = true // already ours
			th.writeOrd = append(th.writeOrd, hdr)
		}
		break
	}
	// Wait out foreign readers (LogTM NACKs the writer until they drain).
	myBit := uint64(1) << uint(th.core)
	for attempt := 0; ; attempt++ {
		r := sys.Load(th.ctx, th.core, hdr+hReader).Val
		if r&^myBit == 0 {
			return
		}
		// Age rule against the oldest reader we are stuck behind.
		oldest := uint64(1 << 63)
		for c := 0; c < len(rt.stamps); c++ {
			if r&(1<<uint(c)) != 0 && c != th.core && rt.stamps[c] < oldest {
				oldest = rt.stamps[c]
			}
		}
		th.stall(attempt, oldest)
	}
}

// commit is fast: release ownership, truncate the log.
func (th *thread) commit() {
	th.release()
	th.ctx.Advance(10) // log pointer reset
}

// rollback walks the undo log in reverse, restoring old values in place,
// then releases ownership — LogTM's expensive abort path.
func (th *thread) rollback() {
	sys := th.rt.sys
	for i := len(th.undo) - 1; i >= 0; i-- {
		sys.Store(th.ctx, th.core, th.undo[i].addr, th.undo[i].old)
		th.ctx.Advance(4) // log walk instructions
	}
	th.release()
}

// release drops write ownership and the reader bit on every touched header
// (slices, not maps, so the simulated access order is deterministic).
func (th *thread) release() {
	sys := th.rt.sys
	for _, hdr := range th.writeOrd {
		sys.Store(th.ctx, th.core, hdr+hWriter, 0)
	}
	myBit := uint64(1) << uint(th.core)
	for _, hdr := range th.readOrd {
		for {
			cur := sys.Load(th.ctx, th.core, hdr+hReader).Val
			if cur&myBit == 0 {
				break
			}
			if _, ok := sys.CAS(th.ctx, th.core, hdr+hReader, cur, cur&^myBit); ok {
				break
			}
		}
	}
}

// txn adapts the thread to tmapi.Txn with eager in-place semantics.
type txn struct{ th *thread }

// Load implements tmapi.Txn.
func (t txn) Load(a memory.Addr) uint64 {
	th := t.th
	th.openRead(a.Line())
	return th.rt.sys.Load(th.ctx, th.core, a).Val
}

// Store implements tmapi.Txn: log the old value, then write in place.
func (t txn) Store(a memory.Addr, v uint64) {
	th := t.th
	th.openWrite(a.Line())
	sys := th.rt.sys
	old := sys.Load(th.ctx, th.core, a).Val
	if len(th.undo) < logWords/2 {
		slot := th.rt.logs[th.core] + memory.Addr(2*len(th.undo))
		sys.Store(th.ctx, th.core, slot, uint64(a))
		sys.Store(th.ctx, th.core, slot+1, old)
	}
	th.undo = append(th.undo, undoEntry{addr: a, old: old})
	sys.Store(th.ctx, th.core, a, v)
}

// Abort implements tmapi.Txn.
func (t txn) Abort() { panic(tmapi.AbortError{UserRequested: true}) }
