// Package rtmf implements the RTM-F baseline: a hardware-accelerated STM in
// the style of RTM (Shriraman et al., ISCA 2007). It uses two of FlexTM's
// hardware primitives — alert-on-update for conflict notification and
// programmable data isolation for versioning — but, unlike FlexTM, it keeps
// conflict detection in software metadata: every object carries a header
// word that writers acquire with a CAS and readers ALoad for change
// notification.
//
// The paper measures RTM-F's residual per-access bookkeeping at 40-60% of
// execution time; here those costs arise from the same simulated header
// loads, CASes, and ALoads.
package rtmf

import (
	"flextm/internal/cm"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// Headers is the size of the object-header table.
const Headers = 1 << 13

// Status-word values.
const (
	stActive    = 1
	stCommitted = 2
	stAborted   = 3
)

const ownerMask = 0xFF

// Runtime is an RTM-F instance.
type Runtime struct {
	sys     *tmesi.System
	mgr     cm.Manager
	headers memory.Addr
	status  []memory.Addr
	arenas  [][]memory.Addr
	arenaIx []int
	karma   []int
	stats   []tmapi.Stats
}

const statusSlots = 64

// New returns an RTM-F runtime over sys using manager mgr.
func New(sys *tmesi.System, mgr cm.Manager) *Runtime {
	cores := sys.Config().Cores
	rt := &Runtime{
		sys:     sys,
		mgr:     mgr,
		headers: sys.Alloc().Alloc(Headers * memory.LineWords),
		status:  make([]memory.Addr, cores),
		arenas:  make([][]memory.Addr, cores),
		arenaIx: make([]int, cores),
		karma:   make([]int, cores),
		stats:   make([]tmapi.Stats, cores),
	}
	for c := 0; c < cores; c++ {
		slots := make([]memory.Addr, statusSlots)
		for i := range slots {
			slots[i] = sys.Alloc().Alloc(memory.LineWords)
		}
		rt.arenas[c] = slots
	}
	return rt
}

// Name implements tmapi.Runtime.
func (rt *Runtime) Name() string { return "RTM-F" }

// Stats implements tmapi.Runtime.
func (rt *Runtime) Stats() tmapi.Stats {
	var total tmapi.Stats
	for i := range rt.stats {
		total.Commits += rt.stats[i].Commits
		total.Aborts += rt.stats[i].Aborts
	}
	return total
}

// Bind implements tmapi.Runtime.
func (rt *Runtime) Bind(ctx *sim.Ctx, core int) tmapi.Thread {
	return &thread{
		rt:   rt,
		ctx:  ctx,
		core: core,
		rnd:  sim.NewRand(uint64(core)*0x9E3779B9 + 0xF17),
	}
}

func (rt *Runtime) headerOf(l memory.LineAddr) memory.Addr {
	h := uint64(l) * 0xC2B2AE3D27D4EB4F
	return rt.headers + memory.Addr((h%Headers)*memory.LineWords)
}

type readEntry struct {
	hdr memory.Addr
	ver uint64
}

type writeEntry struct {
	hdr memory.Addr
	ver uint64
}

type thread struct {
	rt    *Runtime
	ctx   *sim.Ctx
	core  int
	rnd   *sim.Rand
	depth int

	status   memory.Addr
	reads    []readEntry
	readHdr  map[memory.Addr]int // header addr -> reads index
	writes   []writeEntry
	writeHdr map[memory.Addr]bool
	aborts   int
}

func (th *thread) Core() int       { return th.core }
func (th *thread) Ctx() *sim.Ctx   { return th.ctx }
func (th *thread) Rand() *sim.Rand { return th.rnd }
func (th *thread) Work(d sim.Time) { th.ctx.Advance(d) }
func (th *thread) Load(a memory.Addr) uint64 {
	return th.rt.sys.Load(th.ctx, th.core, a).Val
}
func (th *thread) Store(a memory.Addr, v uint64) {
	th.rt.sys.Store(th.ctx, th.core, a, v)
}

// Atomic implements tmapi.Thread.
func (th *thread) Atomic(body func(tmapi.Txn)) {
	if th.depth > 0 {
		th.depth++
		defer func() { th.depth-- }()
		body(txn{th})
		return
	}
	for {
		th.begin()
		if th.attempt(body) {
			th.rt.stats[th.core].Commits++
			th.aborts = 0
			return
		}
		th.rt.stats[th.core].Aborts++
		th.aborts++
		th.ctx.Advance(th.rt.mgr.RetryBackoff(th.aborts, th.rnd))
	}
}

func (th *thread) begin() {
	rt, sys := th.rt, th.rt.sys
	i := rt.arenaIx[th.core]
	rt.arenaIx[th.core] = (i + 1) % statusSlots
	th.status = rt.arenas[th.core][i]
	sys.Store(th.ctx, th.core, th.status, stActive)
	rt.status[th.core] = th.status
	sys.ALoad(th.ctx, th.core, th.status)
	rt.karma[th.core] = 0
	th.reads = th.reads[:0]
	th.readHdr = make(map[memory.Addr]int)
	th.writes = th.writes[:0]
	th.writeHdr = make(map[memory.Addr]bool)
	sys.BeginTxn(th.core)
	th.ctx.Advance(40) // register checkpoint
	th.checkAlert()
}

func (th *thread) attempt(body func(tmapi.Txn)) (ok bool) {
	th.depth = 1
	defer func() {
		th.depth = 0
		if r := recover(); r != nil {
			if _, isAbort := r.(tmapi.AbortError); !isAbort {
				panic(r)
			}
			th.onAbort()
		}
	}()
	body(txn{th})
	return th.commit()
}

func abort() { panic(tmapi.AbortError{}) }

func (th *thread) onAbort() {
	sys := th.rt.sys
	if sys.TxnActive(th.core) {
		sys.AbortFlash(th.ctx, th.core)
	}
	// Release acquired headers so peers stop seeing us as owner.
	for _, we := range th.writes {
		sys.Store(th.ctx, th.core, we.hdr, we.ver)
	}
	th.ctx.Advance(30)
}

// checkAlert handles AOU alerts: a changed status word means we were
// aborted; a changed read-set header means a writer acquired an object we
// read, which RTM-F's handler arbitrates.
func (th *thread) checkAlert() {
	sys := th.rt.sys
	line, ok := sys.TakeAlert(th.core)
	if !ok {
		return
	}
	if sys.Load(th.ctx, th.core, th.status).Val == stAborted {
		abort()
	}
	if line == th.status.Line() {
		sys.ALoad(th.ctx, th.core, th.status) // spurious: re-arm
		return
	}
	// A watched header changed: re-read it and arbitrate.
	hdrAddr := line.WordOf(0)
	i, tracked := th.readHdr[hdrAddr]
	if !tracked {
		return
	}
	h := sys.Load(th.ctx, th.core, hdrAddr).Val
	if h == th.reads[i].ver {
		sys.ALoad(th.ctx, th.core, hdrAddr) // false alarm (eviction): re-arm
		return
	}
	if owner := h & ownerMask; owner != 0 && !th.writeHdr[hdrAddr] {
		th.conflictWithOwner(int(owner-1), hdrAddr, i)
		return
	}
	// Version advanced: the writer committed; our read is stale.
	abort()
}

// conflictWithOwner arbitrates an eager read-write conflict detected via
// AOU on a header in our read set.
func (th *thread) conflictWithOwner(enemy int, hdrAddr memory.Addr, readIx int) {
	rt, sys := th.rt, th.rt.sys
	for attempt := 0; ; attempt++ {
		dec, wait := rt.mgr.OnConflict(cm.Conflict{
			Me: th.core, Enemy: enemy,
			MyKarma: rt.karma[th.core], EnemyKarma: rt.karma[enemy],
			Attempt: attempt,
		}, th.rnd)
		switch dec {
		case cm.AbortSelf:
			abort()
		case cm.AbortEnemy:
			sys.CAS(th.ctx, th.core, rt.status[enemy], stActive, stAborted)
		case cm.Wait:
			th.ctx.Advance(wait)
		}
		h := sys.Load(th.ctx, th.core, hdrAddr).Val
		if h&ownerMask == 0 {
			if h == th.reads[readIx].ver {
				sys.ALoad(th.ctx, th.core, hdrAddr)
				return // enemy aborted; our read still valid
			}
			abort() // enemy committed; stale read
		}
		if attempt > 30 {
			abort()
		}
	}
}

// Hardware acceleration removes cloning and validation, but RTM-F still
// runs software open barriers (the paper's residual 40-60%% bookkeeping).
const (
	openROWork = 20
	openRWWork = 30
)

// openRO records and ALoads the header of a line on first read.
func (th *thread) openRO(line memory.LineAddr) {
	rt, sys := th.rt, th.rt.sys
	hdr := rt.headerOf(line)
	if _, ok := th.readHdr[hdr]; ok || th.writeHdr[hdr] {
		return
	}
	th.ctx.Advance(openROWork)
	for attempt := 0; ; attempt++ {
		h := sys.Load(th.ctx, th.core, hdr).Val
		th.checkAlert()
		owner := h & ownerMask
		if owner == 0 || int(owner-1) == th.core {
			th.reads = append(th.reads, readEntry{hdr: hdr, ver: h})
			th.readHdr[hdr] = len(th.reads) - 1
			sys.ALoad(th.ctx, th.core, hdr)
			th.checkAlert()
			break
		}
		th.contendOnOpen(int(owner-1), attempt)
	}
	rt.karma[th.core]++
}

// openRW acquires the header of a line on first write.
func (th *thread) openRW(line memory.LineAddr) {
	rt, sys := th.rt, th.rt.sys
	hdr := rt.headerOf(line)
	if th.writeHdr[hdr] {
		return
	}
	th.ctx.Advance(openRWWork)
	for attempt := 0; ; attempt++ {
		h := sys.Load(th.ctx, th.core, hdr).Val
		th.checkAlert()
		owner := h & ownerMask
		if owner == 0 {
			if _, ok := sys.CAS(th.ctx, th.core, hdr, h, h|uint64(th.core+1)); ok {
				// Record before anything that can panic, or the header
				// would stay acquired forever after an abort.
				th.writes = append(th.writes, writeEntry{hdr: hdr, ver: h})
				th.writeHdr[hdr] = true
				th.checkAlert()
				break
			}
			th.checkAlert()
			continue
		}
		if int(owner-1) == th.core {
			th.writeHdr[hdr] = true
			break
		}
		th.contendOnOpen(int(owner-1), attempt)
	}
	rt.karma[th.core]++
}

// contendOnOpen arbitrates a write-write (or write-after-read) conflict
// found while opening an object.
func (th *thread) contendOnOpen(enemy int, attempt int) {
	rt, sys := th.rt, th.rt.sys
	dec, wait := rt.mgr.OnConflict(cm.Conflict{
		Me: th.core, Enemy: enemy,
		MyKarma: rt.karma[th.core], EnemyKarma: rt.karma[enemy],
		Attempt: attempt,
	}, th.rnd)
	switch dec {
	case cm.AbortSelf:
		abort()
	case cm.AbortEnemy:
		sys.CAS(th.ctx, th.core, rt.status[enemy], stActive, stAborted)
		th.ctx.Advance(64)
	case cm.Wait:
		th.ctx.Advance(wait)
	}
	th.checkAlert()
	if attempt > 30 {
		abort()
	}
}

// commit publishes: CAS the status word, flash-commit the PDI state, bump
// and release headers.
func (th *thread) commit() bool {
	rt, sys := th.rt, th.rt.sys
	switch sys.CASCommitNoCST(th.ctx, th.core, th.status, stActive, stCommitted) {
	case tmesi.CommitAborted:
		// Speculative cache state already reverted; release headers.
		for _, we := range th.writes {
			sys.Store(th.ctx, th.core, we.hdr, we.ver)
		}
		th.ctx.Advance(30)
		return false
	default:
	}
	for _, we := range th.writes {
		sys.Store(th.ctx, th.core, we.hdr, we.ver+(1<<8))
	}
	_ = rt
	return true
}

// txn adapts the thread to tmapi.Txn: data accesses use PDI (TLoad/TStore),
// metadata in ordinary coherent memory.
type txn struct{ th *thread }

// Load implements tmapi.Txn.
func (t txn) Load(a memory.Addr) uint64 {
	th := t.th
	th.openRO(a.Line())
	v := th.rt.sys.TLoad(th.ctx, th.core, a).Val
	th.checkAlert()
	return v
}

// Store implements tmapi.Txn.
func (t txn) Store(a memory.Addr, v uint64) {
	th := t.th
	th.openRW(a.Line())
	th.rt.sys.TStore(th.ctx, th.core, a, v)
	th.checkAlert()
}

// Abort implements tmapi.Txn.
func (t txn) Abort() { panic(tmapi.AbortError{UserRequested: true}) }
