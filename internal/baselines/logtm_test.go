package baselines

import (
	"testing"

	"flextm/internal/baselines/bulk"
	"flextm/internal/baselines/logtm"
	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

func newLogTM() (tmapi.Runtime, *tmesi.System) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 8
	sys := tmesi.New(cfg)
	return logtm.New(sys), sys
}

func TestLogTMCounterSerializes(t *testing.T) {
	rt, sys := newLogTM()
	x := sys.Alloc().Alloc(1)
	bodies := make([]func(tmapi.Thread), 6)
	for i := range bodies {
		bodies[i] = func(th tmapi.Thread) {
			for j := 0; j < 25; j++ {
				th.Atomic(func(tx tmapi.Txn) {
					tx.Store(x, tx.Load(x)+1)
				})
				th.Work(100)
			}
		}
	}
	runAll(t, rt, bodies...)
	if v := sys.ReadWordRaw(x); v != 150 {
		t.Fatalf("counter = %d, want 150", v)
	}
}

func TestLogTMBankInvariant(t *testing.T) {
	rt, sys := newLogTM()
	const accounts, initial = 12, 500
	base := sys.Alloc().Alloc(accounts * memory.LineWords)
	acct := func(i int) memory.Addr { return base + memory.Addr(i*memory.LineWords) }
	for i := 0; i < accounts; i++ {
		sys.Image().WriteWord(acct(i), initial)
	}
	bodies := make([]func(tmapi.Thread), 5)
	for i := range bodies {
		bodies[i] = func(th tmapi.Thread) {
			r := th.Rand()
			for j := 0; j < 25; j++ {
				from, to := r.Intn(accounts), r.Intn(accounts)
				amt := uint64(r.Intn(20))
				th.Atomic(func(tx tmapi.Txn) {
					f := tx.Load(acct(from))
					if f < amt {
						return
					}
					tx.Store(acct(from), f-amt)
					tx.Store(acct(to), tx.Load(acct(to))+amt)
				})
			}
		}
	}
	runAll(t, rt, bodies...)
	var total uint64
	for i := 0; i < accounts; i++ {
		total += sys.ReadWordRaw(acct(i))
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d", total, accounts*initial)
	}
}

func TestLogTMAbortRollsBackInReverse(t *testing.T) {
	rt, sys := newLogTM()
	x := sys.Alloc().Alloc(1)
	y := sys.Alloc().Alloc(1)
	sys.Image().WriteWord(x, 10)
	sys.Image().WriteWord(y, 20)
	runAll(t, rt, func(th tmapi.Thread) {
		first := true
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 11)
			tx.Store(y, 21)
			tx.Store(x, 12) // two log entries for x: reverse order matters
			if first {
				first = false
				tx.Abort()
			}
		})
	})
	// Values were restored by the abort and then rewritten by the retry.
	if sys.ReadWordRaw(x) != 12 || sys.ReadWordRaw(y) != 21 {
		t.Fatalf("x=%d y=%d", sys.ReadWordRaw(x), sys.ReadWordRaw(y))
	}
	if rt.Stats().Aborts != 1 {
		t.Fatalf("aborts = %d, want 1", rt.Stats().Aborts)
	}
}

func TestLogTMCommitCheapAbortExpensive(t *testing.T) {
	// LogTM's signature trade-off: commit discards the log (O(1)); abort
	// walks it in reverse (O(writes)).
	rt, sys := newLogTM()
	base := sys.Alloc().Alloc(64 * memory.LineWords)
	var commitCost, abortCost sim.Time
	runAll(t, rt, func(th tmapi.Thread) {
		// Warm.
		th.Atomic(func(tx tmapi.Txn) {
			for i := 0; i < 32; i++ {
				tx.Store(base+memory.Addr(i*memory.LineWords), 1)
			}
		})
		// Committing txn: measure from after the writes.
		var afterWrites sim.Time
		th.Atomic(func(tx tmapi.Txn) {
			for i := 0; i < 32; i++ {
				tx.Store(base+memory.Addr(i*memory.LineWords), 2)
			}
			afterWrites = th.Ctx().Now()
		})
		commitCost = th.Ctx().Now() - afterWrites
		// Aborting txn of the same size.
		first := true
		th.Atomic(func(tx tmapi.Txn) {
			for i := 0; i < 32; i++ {
				tx.Store(base+memory.Addr(i*memory.LineWords), 3)
			}
			if first {
				first = false
				afterWrites = th.Ctx().Now()
				tx.Abort()
			}
		})
		_ = afterWrites
	})
	// Abort cost is implicitly visible in stats; assert commit is cheap.
	if commitCost > 200 {
		t.Fatalf("commit after writes cost %d cycles; LogTM commits should be O(1)", commitCost)
	}
	_ = abortCost
	if rt.Stats().Aborts != 1 {
		t.Fatalf("aborts = %d", rt.Stats().Aborts)
	}
}

func TestLogTMWriterWaitsForReaders(t *testing.T) {
	rt, sys := newLogTM()
	x := sys.Alloc().Alloc(1)
	var writerDone, readerDone sim.Time
	runAll(t, rt, func(th tmapi.Thread) {
		// Older long-running reader.
		th.Atomic(func(tx tmapi.Txn) {
			tx.Load(x)
			th.Work(5000)
		})
		readerDone = th.Ctx().Now()
	}, func(th tmapi.Thread) {
		th.Work(500) // start after the reader opened x
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 1) // must wait for the older reader (no remote abort!)
		})
		writerDone = th.Ctx().Now()
	})
	if writerDone < readerDone {
		t.Fatalf("writer finished at %d before the older reader (%d); LogTM cannot abort remote readers",
			writerDone, readerDone)
	}
}

func TestLogTMYoungerAbortsSelfOnDeadlock(t *testing.T) {
	rt, sys := newLogTM()
	x := sys.Alloc().Alloc(1)
	y := sys.Alloc().Alloc(1)
	runAll(t, rt, func(th tmapi.Thread) {
		th.Atomic(func(tx tmapi.Txn) { // older: x then y
			tx.Store(x, 1)
			th.Work(2000)
			tx.Store(y, 1)
		})
	}, func(th tmapi.Thread) {
		th.Work(300)
		th.Atomic(func(tx tmapi.Txn) { // younger: y then x -> deadlock cycle
			tx.Store(y, 2)
			th.Work(2000)
			tx.Store(x, 2)
		})
	})
	if rt.Stats().Aborts == 0 {
		t.Fatal("deadlock cycle resolved without any abort?")
	}
	if rt.Stats().Commits != 2 {
		t.Fatalf("commits = %d, want 2", rt.Stats().Commits)
	}
}

func TestBulkCommitsSerialize(t *testing.T) {
	// Bulk's commit token serializes commits; FlexTM commits in parallel.
	// On a perfectly partitioned workload (disjoint lines per thread) at
	// many threads, FlexTM(Lazy) must clearly outscale Bulk.
	run := func(mk func(*tmesi.System) tmapi.Runtime) sim.Time {
		cfg := tmesi.DefaultConfig()
		sys := tmesi.New(cfg)
		rt := mk(sys)
		base := sys.Alloc().Alloc(16 * memory.LineWords)
		e := sim.NewEngine()
		for i := 0; i < 16; i++ {
			id := i
			e.Spawn("w", 0, func(ctx *sim.Ctx) {
				th := rt.Bind(ctx, id)
				a := base + memory.Addr(id*memory.LineWords)
				for j := 0; j < 100; j++ {
					th.Atomic(func(tx tmapi.Txn) {
						tx.Store(a, tx.Load(a)+1)
					})
				}
			})
		}
		e.Run()
		if got := rt.Stats().Commits; got != 1600 {
			t.Fatalf("%s: commits = %d, want 1600", rt.Name(), got)
		}
		return e.MaxTime()
	}
	bulkTime := run(func(s *tmesi.System) tmapi.Runtime { return bulk.New(s) })
	flexTime := run(func(s *tmesi.System) tmapi.Runtime { return core.New(s, core.Lazy, cm.NewPolka()) })
	if bulkTime < flexTime*3/2 {
		t.Fatalf("token-serialized Bulk (%d cy) should be much slower than FlexTM (%d cy) on disjoint txns",
			bulkTime, flexTime)
	}
}

func TestBulkFalsePositiveAbortsExist(t *testing.T) {
	// Signature-broadcast conflict detection aborts on Bloom aliasing;
	// with many distinct lines in flight some spurious aborts are expected
	// under contention, but correctness must hold (covered by the shared
	// conformance tests). Here we just confirm Bulk resolves real
	// conflicts: two overlapping writers, one aborts.
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 2
	sys := tmesi.New(cfg)
	rt := bulk.New(sys)
	x := sys.Alloc().Alloc(1)
	e := sim.NewEngine()
	for i := 0; i < 2; i++ {
		id := i
		e.Spawn("w", 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, id)
			th.Atomic(func(tx tmapi.Txn) {
				v := tx.Load(x)
				th.Work(3000)
				tx.Store(x, v+1)
			})
		})
	}
	e.Run()
	if v := sys.ReadWordRaw(x); v != 2 {
		t.Fatalf("x = %d, want 2", v)
	}
	if rt.Stats().Aborts == 0 {
		t.Fatal("overlapping writers should have conflicted at commit")
	}
}
