// Package baselines groups the TM systems the paper evaluates against:
// coarse-grain locks (cgl), RSTM-style object STM (rstm), TL2-style
// word STM (tl2), and the RTM-F hardware-accelerated STM (rtmf). All run
// over the same simulated memory system as FlexTM, paying their metadata
// costs in simulated traffic. This parent package holds cross-system
// conformance tests.
package baselines
