// Package bulk implements a Bulk/TCC-flavored lazy HTM baseline (Ceze et
// al., ISCA 2006; Hammond et al., ISCA 2004): lazy versioning in the cache
// (it reuses the PDI states), with conflicts detected only at commit by
// broadcasting the committer's write signature to every other processor,
// and commits serialized by a global token.
//
// This is the design point the paper positions FlexTM against: "FlexTM
// enables lazy conflict management without commit tokens [14], broadcast of
// write sets [6,14], or ticket-based serialization [7]". The token makes
// commit a global bottleneck and the signature comparison aborts on false
// positives; FlexTM's CSTs avoid both.
package bulk

import (
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// Status-word values.
const (
	stActive    = 1
	stCommitted = 2
	stAborted   = 3
)

const statusSlots = 64

// Runtime is a Bulk-style instance.
type Runtime struct {
	sys     *tmesi.System
	token   memory.Addr // global commit token
	status  []memory.Addr
	arenas  [][]memory.Addr
	arenaIx []int
	stats   []tmapi.Stats
}

// New returns a Bulk-style runtime over sys.
func New(sys *tmesi.System) *Runtime {
	cores := sys.Config().Cores
	rt := &Runtime{
		sys:     sys,
		token:   sys.Alloc().Alloc(memory.LineWords),
		status:  make([]memory.Addr, cores),
		arenas:  make([][]memory.Addr, cores),
		arenaIx: make([]int, cores),
		stats:   make([]tmapi.Stats, cores),
	}
	for c := 0; c < cores; c++ {
		slots := make([]memory.Addr, statusSlots)
		for i := range slots {
			slots[i] = sys.Alloc().Alloc(memory.LineWords)
		}
		rt.arenas[c] = slots
	}
	return rt
}

// Name implements tmapi.Runtime.
func (rt *Runtime) Name() string { return "Bulk" }

// Stats implements tmapi.Runtime.
func (rt *Runtime) Stats() tmapi.Stats {
	var total tmapi.Stats
	for i := range rt.stats {
		total.Commits += rt.stats[i].Commits
		total.Aborts += rt.stats[i].Aborts
	}
	return total
}

// Bind implements tmapi.Runtime.
func (rt *Runtime) Bind(ctx *sim.Ctx, core int) tmapi.Thread {
	return &thread{
		rt:   rt,
		ctx:  ctx,
		core: core,
		rnd:  sim.NewRand(uint64(core)*0x9E3779B9 + 0xB01C),
	}
}

type thread struct {
	rt     *Runtime
	ctx    *sim.Ctx
	core   int
	rnd    *sim.Rand
	depth  int
	status memory.Addr
	aborts int
}

func (th *thread) Core() int       { return th.core }
func (th *thread) Ctx() *sim.Ctx   { return th.ctx }
func (th *thread) Rand() *sim.Rand { return th.rnd }
func (th *thread) Work(d sim.Time) { th.ctx.Advance(d) }
func (th *thread) Load(a memory.Addr) uint64 {
	return th.rt.sys.Load(th.ctx, th.core, a).Val
}
func (th *thread) Store(a memory.Addr, v uint64) {
	th.rt.sys.Store(th.ctx, th.core, a, v)
}

// Atomic implements tmapi.Thread.
func (th *thread) Atomic(body func(tmapi.Txn)) {
	if th.depth > 0 {
		th.depth++
		defer func() { th.depth-- }()
		body(txn{th})
		return
	}
	for {
		if th.attempt(body) {
			th.rt.stats[th.core].Commits++
			th.aborts = 0
			return
		}
		th.rt.stats[th.core].Aborts++
		th.aborts++
		shift := th.aborts
		if shift > 8 {
			shift = 8
		}
		th.ctx.Advance(sim.Time(th.rnd.Intn(64<<uint(shift) + 1)))
	}
}

func (th *thread) attempt(body func(tmapi.Txn)) (ok bool) {
	th.depth = 1
	defer func() {
		th.depth = 0
		if r := recover(); r != nil {
			if _, isAbort := r.(tmapi.AbortError); !isAbort {
				panic(r)
			}
			th.onAbort()
		}
	}()
	th.begin()
	body(txn{th})
	th.commit()
	return true
}

func abort() { panic(tmapi.AbortError{}) }

func (th *thread) begin() {
	rt, sys := th.rt, th.rt.sys
	i := rt.arenaIx[th.core]
	rt.arenaIx[th.core] = (i + 1) % statusSlots
	th.status = rt.arenas[th.core][i]
	sys.Store(th.ctx, th.core, th.status, stActive)
	rt.status[th.core] = th.status
	sys.ALoad(th.ctx, th.core, th.status)
	sys.BeginTxn(th.core)
	th.ctx.Advance(30)
	th.checkAlert()
}

func (th *thread) onAbort() {
	sys := th.rt.sys
	if sys.TxnActive(th.core) {
		sys.AbortFlash(th.ctx, th.core)
	}
	th.ctx.Advance(20)
}

// checkAlert: a committer's broadcast aborted us.
func (th *thread) checkAlert() {
	sys := th.rt.sys
	if _, ok := sys.TakeAlert(th.core); !ok {
		return
	}
	if sys.ReadWordRaw(th.status) == stAborted {
		abort()
	}
	sys.ALoad(th.ctx, th.core, th.status)
}

// commit acquires the global token, broadcasts the write signature, aborts
// every transaction whose signatures intersect it, flash-commits, and
// releases the token. Commits are fully serialized — the cost FlexTM's
// CSTs eliminate.
func (th *thread) commit() {
	rt, sys := th.rt, th.rt.sys
	cores := sys.Config().Cores

	// Acquire the commit token.
	for spin := 0; ; spin++ {
		th.checkAlert() // we may be aborted while waiting for the token
		if sys.Load(th.ctx, th.core, rt.token).Val == 0 {
			if _, ok := sys.CAS(th.ctx, th.core, rt.token, 0, uint64(th.core)+1); ok {
				break
			}
		}
		th.ctx.Advance(sim.Time(16 + th.rnd.Intn(64)))
	}
	// Last chance before becoming the committer; from here on the token is
	// held, so an abort must release it before unwinding.
	sys.TakeAlert(th.core)
	if sys.ReadWordRaw(th.status) == stAborted {
		sys.Store(th.ctx, th.core, rt.token, 0)
		abort()
	}

	// Broadcast: one message round carrying Wsig; every other processor
	// compares against its own signatures and self-aborts on intersection
	// (false positives included, as in Bulk).
	wsig := sys.Wsig(th.core).Clone() // survives the commit's flash clear
	broadcast := func() {
		th.ctx.Advance(sim.Time(10 + 2*cores)) // message round + compares
		for r := 0; r < cores; r++ {
			if r == th.core || !sys.TxnActive(r) {
				continue
			}
			if sys.Rsig(r).Intersects(wsig) || sys.Wsig(r).Intersects(wsig) {
				sys.ForceWord(rt.status[r], stAborted)
			}
		}
	}
	broadcast()

	switch sys.CASCommitNoCST(th.ctx, th.core, th.status, stActive, stCommitted) {
	case tmesi.CommitAborted:
		sys.Store(th.ctx, th.core, rt.token, 0)
		abort()
	default:
	}
	// In hardware the broadcast and the commit are one bus-ordered action;
	// here they are separate simulated operations, so a reader can slip in
	// between them. Re-broadcasting after the flash closes the window (a
	// reader that now sees the committed values may be aborted spuriously,
	// which is safe).
	broadcast()
	sys.Store(th.ctx, th.core, rt.token, 0)
}

// txn adapts the thread to tmapi.Txn over PDI.
type txn struct{ th *thread }

// Load implements tmapi.Txn.
func (t txn) Load(a memory.Addr) uint64 {
	th := t.th
	v := th.rt.sys.TLoad(th.ctx, th.core, a).Val
	th.checkAlert()
	return v
}

// Store implements tmapi.Txn.
func (t txn) Store(a memory.Addr, v uint64) {
	th := t.th
	th.rt.sys.TStore(th.ctx, th.core, a, v)
	th.checkAlert()
}

// Abort implements tmapi.Txn.
func (t txn) Abort() { panic(tmapi.AbortError{UserRequested: true}) }
