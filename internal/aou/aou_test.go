package aou

import "testing"

func TestQueueOrderAndDedup(t *testing.T) {
	var u Unit
	u.Enqueue(1)
	u.Enqueue(2)
	u.Enqueue(1) // dup: dropped
	if l, ok := u.Take(); !ok || l != 1 {
		t.Fatalf("first = %v,%v", l, ok)
	}
	if l, ok := u.Take(); !ok || l != 2 {
		t.Fatalf("second = %v,%v", l, ok)
	}
	if _, ok := u.Take(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestDedupOnlyWhileUndelivered(t *testing.T) {
	var u Unit
	u.Enqueue(7)
	u.Take()
	u.Enqueue(7) // same line again after delivery: a new alert
	if !u.Pending() {
		t.Fatal("redelivery after Take must be possible")
	}
}

func TestMarkCounting(t *testing.T) {
	var u Unit
	u.MarkAdded()
	u.MarkAdded()
	u.MarkRemoved()
	if u.Marks() != 1 {
		t.Fatalf("Marks = %d, want 1", u.Marks())
	}
}

func TestReset(t *testing.T) {
	var u Unit
	u.Enqueue(3)
	u.MarkAdded()
	u.Reset()
	if u.Pending() || u.Marks() != 0 {
		t.Fatal("Reset left state")
	}
}
