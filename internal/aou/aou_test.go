package aou

import (
	"testing"

	"flextm/internal/memory"
)

func TestQueueOrderAndDedup(t *testing.T) {
	var u Unit
	u.Enqueue(1)
	u.Enqueue(2)
	u.Enqueue(1) // dup: dropped
	if l, ok := u.Take(); !ok || l != 1 {
		t.Fatalf("first = %v,%v", l, ok)
	}
	if l, ok := u.Take(); !ok || l != 2 {
		t.Fatalf("second = %v,%v", l, ok)
	}
	if _, ok := u.Take(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestDedupOnlyWhileUndelivered(t *testing.T) {
	var u Unit
	u.Enqueue(7)
	u.Take()
	u.Enqueue(7) // same line again after delivery: a new alert
	if !u.Pending() {
		t.Fatal("redelivery after Take must be possible")
	}
}

func TestMarkCounting(t *testing.T) {
	var u Unit
	u.MarkAdded()
	u.MarkAdded()
	u.MarkRemoved()
	if u.Marks() != 1 {
		t.Fatalf("Marks = %d, want 1", u.Marks())
	}
}

func TestReset(t *testing.T) {
	var u Unit
	u.Enqueue(3)
	u.MarkAdded()
	u.Reset()
	if u.Pending() || u.Marks() != 0 {
		t.Fatal("Reset left state")
	}
	if _, ok := u.LastDelivered(); ok {
		t.Fatal("Reset must forget the last delivered alert")
	}
}

// TestQueueOrderAndDedupAtScale is the regression test for the pending-set
// rewrite of Enqueue: FIFO order and dedup semantics must hold exactly at
// sizes where the old O(n) scan per Enqueue was quadratic, including under
// interleaved deliveries and re-enqueues.
func TestQueueOrderAndDedupAtScale(t *testing.T) {
	const n = 4096
	var u Unit
	for round := 0; round < 2; round++ {
		// Enqueue 0..n-1 twice: the second pass must be fully deduplicated.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < n; i++ {
				u.Enqueue(memory.LineAddr(i))
			}
		}
		// Deliver the first half, checking FIFO order.
		for i := 0; i < n/2; i++ {
			l, ok := u.Take()
			if !ok || l != memory.LineAddr(i) {
				t.Fatalf("round %d: Take %d = %v,%v", round, i, l, ok)
			}
			if last, ok := u.LastDelivered(); !ok || last != l {
				t.Fatalf("round %d: LastDelivered = %v,%v after %v", round, last, ok, l)
			}
		}
		// Re-enqueue delivered lines: they are fresh alerts and must queue
		// again, in order, behind the undelivered half.
		for i := 0; i < n/2; i++ {
			u.Enqueue(memory.LineAddr(i))
			u.Enqueue(memory.LineAddr(i)) // and dedup again
		}
		for i := n / 2; i < n; i++ {
			if l, ok := u.Take(); !ok || l != memory.LineAddr(i) {
				t.Fatalf("round %d: Take %d = %v,%v", round, i, l, ok)
			}
		}
		for i := 0; i < n/2; i++ {
			if l, ok := u.Take(); !ok || l != memory.LineAddr(i) {
				t.Fatalf("round %d: re-enqueued Take %d = %v,%v", round, i, l, ok)
			}
		}
		if _, ok := u.Take(); ok {
			t.Fatalf("round %d: queue should be empty", round)
		}
		u.Reset()
	}
}
