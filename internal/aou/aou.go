// Package aou holds the alert-on-update bookkeeping for one core
// (Section 3.4 of the paper): which lines carry the 'A' mark and which
// alerts are pending delivery. The cache itself stores the per-line A bit
// (see internal/cache); this unit tracks the count of marked lines and the
// queue of fired alerts, which the runtime drains at instruction
// boundaries — the paper's trap interface between the load-store unit and
// the trap-logic unit.
//
// Alerts queue (deduplicated per line) rather than overwrite: hardware
// delivers one trap per invalidation, and a runtime that watches several
// lines (RTM-F header watching, FlexWatcher) must not lose any.
package aou

import "flextm/internal/memory"

// Unit is the per-core alert state. The zero value is ready to use.
type Unit struct {
	queue []memory.LineAddr
	marks int
}

// Enqueue records a fired alert for line, deduplicating repeats that have
// not yet been delivered.
func (u *Unit) Enqueue(line memory.LineAddr) {
	for _, l := range u.queue {
		if l == line {
			return
		}
	}
	u.queue = append(u.queue, line)
}

// Take delivers the oldest pending alert.
func (u *Unit) Take() (memory.LineAddr, bool) {
	if len(u.queue) == 0 {
		return 0, false
	}
	line := u.queue[0]
	u.queue = u.queue[1:]
	return line, true
}

// Pending reports whether any alert awaits delivery.
func (u *Unit) Pending() bool { return len(u.queue) > 0 }

// MarkAdded notes that a line gained the A bit.
func (u *Unit) MarkAdded() { u.marks++ }

// MarkRemoved notes that a line lost the A bit (invalidation or AClear).
func (u *Unit) MarkRemoved() { u.marks-- }

// Marks returns the number of lines currently carrying the A bit.
func (u *Unit) Marks() int { return u.marks }

// Reset clears all pending alerts and the mark count (transaction end).
func (u *Unit) Reset() {
	u.queue = u.queue[:0]
	u.marks = 0
}
