// Package aou holds the alert-on-update bookkeeping for one core
// (Section 3.4 of the paper): which lines carry the 'A' mark and which
// alerts are pending delivery. The cache itself stores the per-line A bit
// (see internal/cache); this unit tracks the count of marked lines and the
// queue of fired alerts, which the runtime drains at instruction
// boundaries — the paper's trap interface between the load-store unit and
// the trap-logic unit.
//
// Alerts queue (deduplicated per line) rather than overwrite: hardware
// delivers one trap per invalidation, and a runtime that watches several
// lines (RTM-F header watching, FlexWatcher) must not lose any.
package aou

import "flextm/internal/memory"

// Unit is the per-core alert state. The zero value is ready to use.
type Unit struct {
	queue   []memory.LineAddr
	head    int // delivered prefix of queue (compacted when it drains)
	pending map[memory.LineAddr]struct{}
	last    memory.LineAddr
	hasLast bool
	marks   int
}

// Enqueue records a fired alert for line, deduplicating repeats that have
// not yet been delivered. The pending set makes this O(1); a watcher with
// many marked lines (RTM-F, FlexWatcher) would otherwise pay a linear scan
// per invalidation.
func (u *Unit) Enqueue(line memory.LineAddr) {
	if u.pending == nil {
		u.pending = make(map[memory.LineAddr]struct{}, 8)
	}
	if _, dup := u.pending[line]; dup {
		return
	}
	u.pending[line] = struct{}{}
	u.queue = append(u.queue, line)
}

// Take delivers the oldest pending alert.
func (u *Unit) Take() (memory.LineAddr, bool) {
	if u.head == len(u.queue) {
		return 0, false
	}
	line := u.queue[u.head]
	u.head++
	if u.head == len(u.queue) {
		u.queue = u.queue[:0]
		u.head = 0
	}
	delete(u.pending, line)
	u.last, u.hasLast = line, true
	return line, true
}

// LastDelivered returns the most recently delivered alert line, if any since
// the last Reset. Fault injection uses it to model duplicated delivery.
func (u *Unit) LastDelivered() (memory.LineAddr, bool) {
	return u.last, u.hasLast
}

// Pending reports whether any alert awaits delivery.
func (u *Unit) Pending() bool { return u.head < len(u.queue) }

// MarkAdded notes that a line gained the A bit.
func (u *Unit) MarkAdded() { u.marks++ }

// MarkRemoved notes that a line lost the A bit (invalidation or AClear).
func (u *Unit) MarkRemoved() { u.marks-- }

// Marks returns the number of lines currently carrying the A bit.
func (u *Unit) Marks() int { return u.marks }

// Reset clears all pending alerts and the mark count (transaction end).
func (u *Unit) Reset() {
	u.queue = u.queue[:0]
	u.head = 0
	clear(u.pending)
	u.hasLast = false
	u.marks = 0
}
