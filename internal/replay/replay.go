// Package replay folds a flight-record stream forward to materialize the
// machine's state at an arbitrary cycle: per-core transaction status and
// attempt number, per-line last-writer and reader sets, a signature
// occupancy estimate, and the governor's ladder level. It is the
// time-travel half of the query layer (internal/flightql): where the
// telemetry registry answers "how many, in total, by the end", replay
// answers "what did the machine look like at cycle N".
//
// The fold is purely offline and deterministic: the same records produce a
// byte-identical State. It reads only persisted data (a flight Snapshot or
// a serialized record stream) and touches nothing on the record hot path.
//
// A subset of the telemetry counters is derivable 1:1 from the flight
// stream — each increment site also writes exactly one flight record of a
// known kind on the same core (verified per site; see MirroredCounters).
// For those, replaying to the final cycle must reproduce the live
// registry's end-of-run values exactly; VerifyTelemetry pins that identity
// and the harness acceptance test enforces it per seed. Counters outside
// the set (e.g. cm-abort-enemy, whose flight records also cover commit-loop
// kills that the CM counter does not) are deliberately not mirrored.
package replay

import (
	"fmt"
	"sort"

	"flextm/internal/cst"
	"flextm/internal/flight"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
)

// Status classifies a core's transaction engine at the replay cutoff.
type Status uint8

const (
	// Idle: no attempt open (never begun, or cleanly committed).
	Idle Status = iota
	// Running: an attempt is open (TxnBegin seen, no terminator yet).
	Running
	// Aborted: the last attempt aborted and the retry has not begun
	// (the post-abort back-off window).
	Aborted
	// Serialized: the core entered the serialized-irrevocable fallback and
	// has not committed out of it yet.
	Serialized
)

// String returns the status's stable name.
func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case Aborted:
		return "aborted"
	case Serialized:
		return "serialized"
	}
	return "idle"
}

// MarshalText makes Status render as its name in JSON.
func (s Status) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// CoreState is one core's reconstructed state.
type CoreState struct {
	Core int `json:"core"`
	// Status at the cutoff cycle.
	Status Status `json:"status"`
	// Attempt is the ordinal of the current (or most recent) attempt:
	// the number of TxnBegin records folded so far.
	Attempt int `json:"attempt"`
	// ConsecAborts counts aborts since the last commit — the watchdog's
	// trip variable.
	ConsecAborts int `json:"consecAborts"`
	// SigLines estimates signature occupancy: distinct lines this core has
	// been recorded touching (conflicts, stalls, spills, alerts) inside the
	// open attempt. A lower bound — unconflicted accesses leave no record.
	SigLines int `json:"sigLines"`

	Commits     uint64 `json:"commits"`
	Aborts      uint64 `json:"aborts"`
	Escalations uint64 `json:"escalations"`
	Trips       uint64 `json:"trips"`
}

// LineState is one memory line's reconstructed conflict history.
type LineState struct {
	Line uint64 `json:"line"`
	// LastWriter is the core on the write side of the most recent conflict
	// naming the line (-1 when the line only ever appeared on read sides).
	LastWriter int `json:"lastWriter"`
	// Writers and Readers are the distinct cores ever seen on each side of
	// a conflict over the line, sorted ascending.
	Writers []int `json:"writers,omitempty"`
	Readers []int `json:"readers,omitempty"`
	// Conflicts counts CSTSet records naming the line.
	Conflicts uint64 `json:"conflicts"`
}

// State is the reconstructed machine state at a cycle.
type State struct {
	// Cycle is the requested cutoff; records with At > Cycle are not folded.
	Cycle sim.Time `json:"cycle"`
	// Seq is the highest record sequence number folded, Records the count.
	Seq     uint64 `json:"seq"`
	Records int    `json:"records"`

	Cores []CoreState `json:"cores"`
	// Lines holds every line named by a folded conflict record, sorted by
	// address.
	Lines []LineState `json:"lines,omitempty"`
	// GovLevel is the governor's mitigation-ladder level (the Aux of the
	// last GovStep folded; 0 when the run was ungoverned).
	GovLevel int `json:"govLevel"`

	counters [][telemetry.NumCounters]uint64
}

// MirroredCounters lists the telemetry counters whose end-of-run values are
// derivable 1:1 from the flight stream: every increment site in the
// simulator also records exactly one flight record of a fixed kind, so a
// full-stream replay must land on the live registry's numbers exactly.
var MirroredCounters = []telemetry.Counter{
	telemetry.CtrTxnCommits,       // TxnCommit
	telemetry.CtrTxnAborts,        // TxnAbort
	telemetry.CtrEscalation,       // Escalate
	telemetry.CtrWatchdogTrip,     // WatchdogTrip
	telemetry.CtrCMAbortSelf,      // AbortSelf
	telemetry.CtrCMWait,           // CMStall (count)
	telemetry.CtrCMWaitCycles,     // CMStall (sum of Dur)
	telemetry.CtrCMBackoffCycles,  // Backoff (sum of Dur)
	telemetry.CtrCSTSet,           // CSTSet (+1 requestor, +1 responder)
	telemetry.CtrAlert,            // AOUAlert
	telemetry.CtrOTSpill,          // OTSpill
	telemetry.CtrCommitCSTFail,    // CommitRefused
	telemetry.CtrGovStep,          // GovStep
}

// Counter returns a mirrored counter's replayed value for one core. Zero
// for cores or counters the fold never touched.
func (s *State) Counter(core int, c telemetry.Counter) uint64 {
	if s == nil || core < 0 || core >= len(s.counters) {
		return 0
	}
	return s.counters[core][c]
}

// CounterTotal sums a mirrored counter across cores.
func (s *State) CounterTotal(c telemetry.Counter) uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for i := range s.counters {
		t += s.counters[i][c]
	}
	return t
}

// At folds records with At <= cycle, in Seq order, into a State. The input
// must be Seq-sorted (flight.Recorder.Snapshot's order); out-of-order input
// is sorted on a copy first. cores sizes the per-core tables and is grown
// to cover any core a record names.
func At(recs []flight.Rec, cores int, cycle sim.Time) *State {
	if !sort.SliceIsSorted(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq }) {
		sorted := append([]flight.Rec(nil), recs...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].Seq < sorted[b].Seq })
		recs = sorted
	}
	for _, r := range recs {
		if int(r.Core) >= cores {
			cores = int(r.Core) + 1
		}
		if int(r.Peer) >= cores {
			cores = int(r.Peer) + 1
		}
	}
	if cores < 1 {
		cores = 1
	}

	st := &State{
		Cycle:    cycle,
		Cores:    make([]CoreState, cores),
		counters: make([][telemetry.NumCounters]uint64, cores),
	}
	for i := range st.Cores {
		st.Cores[i].Core = i
	}
	type lineAcc struct {
		lastWriter int
		writers    map[int]bool
		readers    map[int]bool
		conflicts  uint64
	}
	lines := map[uint64]*lineAcc{}
	lineOf := func(addr uint64) *lineAcc {
		la := lines[addr]
		if la == nil {
			la = &lineAcc{lastWriter: -1, writers: map[int]bool{}, readers: map[int]bool{}}
			lines[addr] = la
		}
		return la
	}
	// Distinct lines touched inside each core's open attempt.
	open := make([]map[uint64]bool, cores)
	touch := func(c int, addr uint64) {
		if addr == 0 {
			return
		}
		if open[c] == nil {
			open[c] = map[uint64]bool{}
		}
		open[c][addr] = true
	}

	for i := range recs {
		r := &recs[i]
		if r.At > cycle {
			continue
		}
		c := int(r.Core)
		if c < 0 || c >= cores {
			continue
		}
		st.Records++
		if r.Seq > st.Seq {
			st.Seq = r.Seq
		}
		cs := &st.Cores[c]
		ctr := &st.counters[c]
		switch r.Kind {
		case flight.TxnBegin:
			cs.Attempt++
			if cs.Status != Serialized {
				cs.Status = Running
			}
			open[c] = nil
		case flight.TxnCommit:
			ctr[telemetry.CtrTxnCommits]++
			cs.Commits++
			cs.ConsecAborts = 0
			cs.Status = Idle
			open[c] = nil
		case flight.TxnAbort:
			ctr[telemetry.CtrTxnAborts]++
			cs.Aborts++
			cs.ConsecAborts++
			if cs.Status != Serialized {
				cs.Status = Aborted
			}
			open[c] = nil
		case flight.Escalate:
			ctr[telemetry.CtrEscalation]++
			cs.Escalations++
			cs.Status = Serialized
		case flight.WatchdogTrip:
			ctr[telemetry.CtrWatchdogTrip]++
			cs.Trips++
		case flight.AbortSelf:
			ctr[telemetry.CtrCMAbortSelf]++
		case flight.CMStall:
			ctr[telemetry.CtrCMWait]++
			ctr[telemetry.CtrCMWaitCycles] += uint64(r.Dur)
			touch(c, uint64(r.Line))
		case flight.Backoff:
			ctr[telemetry.CtrCMBackoffCycles] += uint64(r.Dur)
		case flight.CSTSet:
			// The protocol increments the counter on both the requestor and
			// the responder; the single record carries both in Core/Peer.
			ctr[telemetry.CtrCSTSet]++
			p := int(r.Peer)
			if p >= 0 && p < cores {
				st.counters[p][telemetry.CtrCSTSet]++
			}
			if addr := uint64(r.Line); addr != 0 {
				la := lineOf(addr)
				la.conflicts++
				// Aux's low bits carry the cst.Kind recorded in the
				// requestor's table: RW = requestor read / responder wrote,
				// WR = requestor wrote / responder read, WW = both wrote.
				switch cst.Kind(r.Aux & flight.AuxMask) {
				case cst.RW:
					la.readers[c] = true
					if p >= 0 {
						la.writers[p] = true
						la.lastWriter = p
					}
				case cst.WR:
					la.writers[c] = true
					la.lastWriter = c
					if p >= 0 {
						la.readers[p] = true
					}
				case cst.WW:
					la.writers[c] = true
					la.lastWriter = c
					if p >= 0 {
						la.writers[p] = true
					}
				}
				touch(c, addr)
				if p >= 0 && p < cores {
					touch(p, addr)
				}
			}
		case flight.AOUAlert:
			ctr[telemetry.CtrAlert]++
		case flight.OTSpill:
			ctr[telemetry.CtrOTSpill]++
			touch(c, uint64(r.Line))
		case flight.CommitRefused:
			ctr[telemetry.CtrCommitCSTFail]++
		case flight.GovStep:
			ctr[telemetry.CtrGovStep]++
			st.GovLevel = int(r.Aux)
		}
	}

	for c := range open {
		st.Cores[c].SigLines = len(open[c])
	}
	addrs := make([]uint64, 0, len(lines))
	for a := range lines {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		la := lines[a]
		ls := LineState{Line: a, LastWriter: la.lastWriter, Conflicts: la.conflicts}
		for w := range la.writers {
			ls.Writers = append(ls.Writers, w)
		}
		for rd := range la.readers {
			ls.Readers = append(ls.Readers, rd)
		}
		sort.Ints(ls.Writers)
		sort.Ints(ls.Readers)
		st.Lines = append(st.Lines, ls)
	}
	return st
}

// Final folds the whole stream: the state at the last record's cycle.
func Final(recs []flight.Rec, cores int) *State {
	var end sim.Time
	for _, r := range recs {
		if r.At > end {
			end = r.At
		}
	}
	return At(recs, cores, end)
}

// VerifyTelemetry checks the replay-identity invariant: every mirrored
// counter's replayed value equals the live registry's, per core, in the
// given end-of-run snapshot. A non-nil error names the first divergence.
// The identity holds only when the flight rings never wrapped (lost records
// are gone; the registry still counted them) — callers size the rings for
// the run, or check flight.Recorder.Overwritten() first.
func (s *State) VerifyTelemetry(snap telemetry.Snapshot) error {
	if s == nil {
		return fmt.Errorf("replay: nil state")
	}
	for c := range snap.Cores {
		for _, ctr := range MirroredCounters {
			want := snap.Cores[c].Counters[ctr]
			got := s.Counter(c, ctr)
			if got != want {
				return fmt.Errorf("replay: core %d counter %q: replayed %d, live telemetry %d",
					c, ctr.String(), got, want)
			}
		}
	}
	if extra := len(s.counters) - len(snap.Cores); extra > 0 {
		for c := len(snap.Cores); c < len(s.counters); c++ {
			for _, ctr := range MirroredCounters {
				if v := s.counters[c][ctr]; v != 0 {
					return fmt.Errorf("replay: core %d outside live snapshot has counter %q = %d",
						c, ctr.String(), v)
				}
			}
		}
	}
	return nil
}
