package replay

import (
	"testing"

	"flextm/internal/cst"
	"flextm/internal/flight"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
)

type stream struct {
	recs []flight.Rec
}

func (s *stream) add(at sim.Time, core int, k flight.Kind, peer int, aux uint8, line memory.LineAddr, dur sim.Time) {
	s.recs = append(s.recs, flight.Rec{
		At: at, Dur: dur, Line: line, Seq: uint64(len(s.recs) + 1),
		Core: int16(core), Peer: int16(peer), Kind: k, Aux: aux,
	})
}

// TestFoldStatusAndCounters: a two-core exchange — begin, conflict, kill,
// abort, backoff, retry, commit — lands on the right statuses, counts, and
// counter mirror at several cutoffs.
func TestFoldStatusAndCounters(t *testing.T) {
	var s stream
	s.add(10, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(12, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(20, 0, flight.CSTSet, 1, uint8(cst.WW), 0x40, 0)
	s.add(25, 0, flight.AbortEnemy, 1, 0, 0x40, 0)
	s.add(30, 1, flight.TxnAbort, -1, 0, 0, 0)
	s.add(40, 1, flight.Backoff, -1, 1, 0, 35)
	s.add(50, 0, flight.TxnCommit, -1, 0, 0, 0)
	s.add(60, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(80, 1, flight.TxnCommit, -1, 0, 0, 0)

	// Mid-run: core 0 running, core 1 aborted in its backoff window.
	st := At(s.recs, 2, 45)
	if got := st.Cores[0].Status; got != Running {
		t.Fatalf("core 0 status at 45 = %v, want running", got)
	}
	if got := st.Cores[1].Status; got != Aborted {
		t.Fatalf("core 1 status at 45 = %v, want aborted", got)
	}
	if st.Cores[1].ConsecAborts != 1 {
		t.Fatalf("core 1 consecAborts = %d, want 1", st.Cores[1].ConsecAborts)
	}
	if got := st.Counter(1, telemetry.CtrCMBackoffCycles); got != 35 {
		t.Fatalf("core 1 backoff cycles = %d, want 35", got)
	}
	// CSTSet mirrors onto both sides.
	if st.Counter(0, telemetry.CtrCSTSet) != 1 || st.Counter(1, telemetry.CtrCSTSet) != 1 {
		t.Fatalf("cst-set mirror = %d/%d, want 1/1",
			st.Counter(0, telemetry.CtrCSTSet), st.Counter(1, telemetry.CtrCSTSet))
	}

	// Final: both idle, one commit each, consec aborts cleared.
	fin := Final(s.recs, 2)
	if fin.Cycle != 80 || fin.Records != len(s.recs) || fin.Seq != uint64(len(s.recs)) {
		t.Fatalf("final fold: cycle=%d records=%d seq=%d", fin.Cycle, fin.Records, fin.Seq)
	}
	for c := 0; c < 2; c++ {
		if fin.Cores[c].Status != Idle || fin.Cores[c].Commits != 1 {
			t.Fatalf("core %d final = %+v", c, fin.Cores[c])
		}
	}
	if fin.Cores[1].ConsecAborts != 0 {
		t.Fatalf("core 1 consecAborts after commit = %d, want 0", fin.Cores[1].ConsecAborts)
	}
	if fin.Cores[1].Attempt != 2 {
		t.Fatalf("core 1 attempts = %d, want 2", fin.Cores[1].Attempt)
	}
}

// TestFoldLineState: CSTSet kinds place cores on the right sides of the
// line, and last-writer tracks the most recent write side.
func TestFoldLineState(t *testing.T) {
	var s stream
	s.add(10, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(11, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(12, 2, flight.TxnBegin, -1, 0, 0, 0)
	// Core 0 reads a line core 1 wrote (RW: requestor read / responder wrote).
	s.add(20, 0, flight.CSTSet, 1, uint8(cst.RW), 0x80, 0)
	// Core 2 writes the same line (WR: requestor wrote / responder read).
	s.add(30, 2, flight.CSTSet, 0, uint8(cst.WR), 0x80, 0)

	st := At(s.recs, 3, 100)
	if len(st.Lines) != 1 {
		t.Fatalf("lines = %+v, want one entry", st.Lines)
	}
	l := st.Lines[0]
	if l.Line != 0x80 || l.Conflicts != 2 {
		t.Fatalf("line = %+v", l)
	}
	if l.LastWriter != 2 {
		t.Fatalf("lastWriter = %d, want 2", l.LastWriter)
	}
	wantW, wantR := []int{1, 2}, []int{0}
	if len(l.Writers) != 2 || l.Writers[0] != wantW[0] || l.Writers[1] != wantW[1] {
		t.Fatalf("writers = %v, want %v", l.Writers, wantW)
	}
	if len(l.Readers) != 1 || l.Readers[0] != wantR[0] {
		t.Fatalf("readers = %v, want %v", l.Readers, wantR)
	}
	// Both CSTSet records happened inside open attempts: occupancy counts.
	if st.Cores[0].SigLines != 1 || st.Cores[2].SigLines != 1 {
		t.Fatalf("sigLines = %d/%d, want 1/1", st.Cores[0].SigLines, st.Cores[2].SigLines)
	}
	// A cutoff before the second conflict sees core 1 as last writer.
	early := At(s.recs, 3, 25)
	if early.Lines[0].LastWriter != 1 {
		t.Fatalf("early lastWriter = %d, want 1", early.Lines[0].LastWriter)
	}
}

// TestFoldGovernorAndEscalation: GovStep moves the ladder level, Escalate
// pins serialized status until the fallback commit.
func TestFoldGovernorAndEscalation(t *testing.T) {
	var s stream
	s.add(10, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(20, 0, flight.TxnAbort, -1, 0, 0, 0)
	s.add(25, 0, flight.WatchdogTrip, -1, 1, 0, 0)
	s.add(30, 0, flight.Escalate, -1, 0, 0, 0)
	s.add(31, 0, flight.GovStep, 0, 1, 0, 0)
	s.add(35, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(50, 0, flight.GovStep, 1, 2, 0, 0)
	s.add(60, 0, flight.TxnCommit, -1, 1, 0, 0)
	s.add(70, 0, flight.GovStep, 2, 1, 0, 0)

	mid := At(s.recs, 1, 40)
	if mid.Cores[0].Status != Serialized {
		t.Fatalf("status mid-escalation = %v, want serialized", mid.Cores[0].Status)
	}
	if mid.GovLevel != 1 {
		t.Fatalf("gov level at 40 = %d, want 1", mid.GovLevel)
	}
	fin := Final(s.recs, 1)
	if fin.Cores[0].Status != Idle {
		t.Fatalf("status after fallback commit = %v, want idle", fin.Cores[0].Status)
	}
	if fin.GovLevel != 1 {
		t.Fatalf("final gov level = %d, want 1", fin.GovLevel)
	}
	if fin.Cores[0].Trips != 1 || fin.Cores[0].Escalations != 1 {
		t.Fatalf("trips/escalations = %d/%d, want 1/1", fin.Cores[0].Trips, fin.Cores[0].Escalations)
	}
	if got := fin.Counter(0, telemetry.CtrGovStep); got != 3 {
		t.Fatalf("gov-step mirror = %d, want 3", got)
	}
}

// TestFoldUnsortedInput: out-of-Seq input is sorted on a copy, leaving the
// caller's slice untouched.
func TestFoldUnsortedInput(t *testing.T) {
	var s stream
	s.add(10, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(20, 0, flight.TxnCommit, -1, 0, 0, 0)
	rev := []flight.Rec{s.recs[1], s.recs[0]}
	st := At(rev, 1, 100)
	if st.Cores[0].Commits != 1 || st.Cores[0].Status != Idle {
		t.Fatalf("unsorted fold = %+v", st.Cores[0])
	}
	if rev[0].Seq != 2 {
		t.Fatal("At mutated its input slice")
	}
}

// TestVerifyTelemetryDivergence: a fabricated mismatch is reported, a
// faithful snapshot passes.
func TestVerifyTelemetryDivergence(t *testing.T) {
	var s stream
	s.add(10, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(20, 0, flight.TxnCommit, -1, 0, 0, 0)
	st := Final(s.recs, 1)

	reg := telemetry.New(1)
	reg.Inc(0, telemetry.CtrTxnCommits)
	if err := st.VerifyTelemetry(reg.Snapshot()); err != nil {
		t.Fatalf("faithful snapshot rejected: %v", err)
	}
	reg.Inc(0, telemetry.CtrTxnCommits)
	if err := st.VerifyTelemetry(reg.Snapshot()); err == nil {
		t.Fatal("divergent snapshot accepted")
	}
}
